"""Intraprocedural control-flow graphs for the dataflow rules.

:func:`build_cfg` lowers one function body into basic blocks connected
by labelled edges.  The graph is deliberately simple — the dataflow
rules (RPR106–RPR108) need branch-sensitive statement order, not an
optimizing compiler's IR:

* **simple statements** (assignments, calls, returns …) accumulate in a
  block's ``statements`` list in source order;
* a block ending in a **conditional** carries the test expression in
  ``test`` and two outgoing edges labelled ``"true"``/``"false"`` — the
  framework's ``refine`` hook sees exactly this pair, which is how the
  overflow rule learns that the false edge of ``if bound * card >=
  LIMIT`` proves the fold safe;
* a **loop head** block carries the ``ast.For`` node in ``loop`` (the
  target/iter binding, *not* the body — the body is its own region of
  blocks with a back edge), so transfer functions bind the loop variable
  without double-walking the body;
* ``try`` bodies get a coarse ``"except"`` edge from every block in the
  protected region to each handler — any statement may raise, so the
  handler entry state is the join of the whole region (blocks inside a
  region with handlers or a ``finally`` also carry ``protected=True``,
  which the typestate leak rule reads and ``render`` omits);
* a ``finally`` body is lowered twice: an *abort copy* that
  return/raise routing and the region's ``"except"`` edges enter (it
  continues to the next enclosing finally, or the exit), and a *normal
  copy* on the fall-through path — so a ``return`` inside ``try`` runs
  the finally before reaching the exit, which is what lets the
  typestate rules prove ``finally: handle.close()`` releases on every
  path;
* ``return``/``raise``/``break``/``continue`` terminate their block with
  an edge to the innermost pending finally, the function exit, or the
  enclosing loop's head/after block (``break``/``continue`` skip
  pending finallys — a documented coarseness).

Comprehensions stay expressions: their internal iteration is atomic from
the rules' point of view (the provenance domains classify the whole
expression), so they never become blocks.

The synthetic exit block is always last and carries no statements;
:meth:`CFG.render` prints a stable textual form the golden tests pin.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: symbolic edge target for "function exit" while the graph is being
#: built; patched to the real exit block index at the end.
_EXIT = -1


@dataclass
class Block:
    """One basic block: straight-line statements plus labelled edges."""

    index: int
    statements: list[ast.AST] = field(default_factory=list)
    """Simple statements in source order (may include ``ast.withitem``
    and ``ast.ExceptHandler`` binder nodes for ``with``/``except``)."""
    test: ast.expr | None = None
    """Branch condition when the block ends in ``if``/``while``."""
    loop: ast.For | None = None
    """The ``for`` node when this block is a for-loop head."""
    successors: list[tuple[int, str]] = field(default_factory=list)
    """(target block index, edge label) pairs; labels are ``""`` for
    unconditional fall-through, ``"true"``/``"false"`` for branches,
    ``"back"`` for loop back edges, ``"except"`` for handler entry."""
    protected: bool = False
    """True when the block lies inside a ``try`` region with handlers or
    a ``finally`` — a raise here is observed, not an abrupt function
    exit.  The typestate leak rule (RPR109) uses this to tell which
    calls can abandon a live resource; not part of :meth:`CFG.render`."""


@dataclass
class CFG:
    """A function's control-flow graph; ``blocks[-1]`` is the exit."""

    name: str
    blocks: list[Block]

    @property
    def entry(self) -> int:
        return 0

    @property
    def exit(self) -> int:
        return len(self.blocks) - 1

    def render(self) -> str:
        """Deterministic textual form, pinned by the golden tests."""
        lines = []
        for block in self.blocks:
            parts = [_describe(node) for node in block.statements]
            if block.loop is not None:
                parts.append(
                    f"for {ast.unparse(block.loop.target)} "
                    f"in {ast.unparse(block.loop.iter)}"
                )
            if block.test is not None:
                parts.append(f"test {ast.unparse(block.test)}")
            body = "; ".join(parts) if parts else "<empty>"
            if block.index == self.exit:
                body = "<exit>"
            edges = " ".join(
                f"{label}:B{target}" if label else f"B{target}"
                for target, label in block.successors
            )
            arrow = f" -> {edges}" if edges else ""
            lines.append(f"B{block.index}: [{body}]{arrow}")
        return "\n".join(lines)


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.withitem):
        rendered = f"with {ast.unparse(node.context_expr)}"
        if node.optional_vars is not None:
            rendered += f" as {ast.unparse(node.optional_vars)}"
        return rendered
    if isinstance(node, ast.ExceptHandler):
        rendered = "except"
        if node.type is not None:
            rendered += f" {ast.unparse(node.type)}"
        if node.name:
            rendered += f" as {node.name}"
        return rendered
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return f"def {node.name}"
    if isinstance(node, ast.ClassDef):
        return f"class {node.name}"
    return ast.unparse(node)


def shallow_exprs(node: ast.AST) -> list[ast.expr]:
    """The expressions a block statement evaluates *in this block*.

    Compound regions already lowered elsewhere are skipped: a stored
    ``ast.For`` loop head contributes only its iterable and target, a
    nested ``def`` only its decorators and defaults (its body is a
    different scope), a ``with`` binder only the context expression.
    Everything else is a genuinely simple statement whose whole subtree
    belongs to the block.
    """
    if isinstance(node, ast.For):
        return [node.iter]
    if isinstance(node, ast.withitem):
        return [node.context_expr]
    if isinstance(node, ast.ExceptHandler):
        return [node.type] if node.type is not None else []
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        out: list[ast.expr] = list(node.decorator_list)
        out.extend(d for d in node.args.defaults)
        out.extend(d for d in node.args.kw_defaults if d is not None)
        return out
    if isinstance(node, ast.ClassDef):
        return list(node.decorator_list) + list(node.bases)
    if isinstance(node, ast.expr):
        return [node]
    return [child for child in ast.iter_child_nodes(node) if isinstance(child, ast.expr)]


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        # (loop head index, loop after index) for break/continue targets
        self.loop_stack: list[tuple[int, int]] = []
        # blocks belonging to open try regions, outermost first
        self.try_regions: list[list[int]] = []
        # abort-copy entry blocks of pending ``finally`` bodies, outermost
        # first: return/raise inside the try runs the finally on the way
        # out (break/continue stay coarse — they skip this routing)
        self.finally_stack: list[int] = []

    def _abort_continue(self) -> int:
        """Where an abrupt exit goes next: the innermost pending
        ``finally`` body, or the function exit."""
        return self.finally_stack[-1] if self.finally_stack else _EXIT

    def new_block(self) -> int:
        block = Block(index=len(self.blocks))
        if self.try_regions:
            block.protected = True
        self.blocks.append(block)
        for region in self.try_regions:
            region.append(block.index)
        return block.index

    def edge(self, source: int, target: int, label: str = "") -> None:
        pair = (target, label)
        if pair not in self.blocks[source].successors:
            self.blocks[source].successors.append(pair)

    def build_body(self, statements: list[ast.stmt], current: int | None) -> int | None:
        """Lower a statement list; returns the live exit block or None."""
        for statement in statements:
            if current is None:
                # unreachable code after return/raise/break; still lower
                # it (rules should see it) into a predecessor-less block.
                current = self.new_block()
            current = self._lower(statement, current)
        return current

    def _lower(self, statement: ast.stmt, current: int) -> int | None:
        if isinstance(statement, ast.If):
            return self._lower_if(statement, current)
        if isinstance(statement, ast.While):
            return self._lower_while(statement, current)
        if isinstance(statement, ast.For):
            return self._lower_for(statement, current)
        if isinstance(statement, ast.AsyncFor):
            return self._lower_for(statement, current)  # same shape
        if isinstance(statement, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._lower_try(statement, current)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self._lower_with(statement, current)
        if isinstance(statement, ast.Match):
            return self._lower_match(statement, current)
        if isinstance(statement, (ast.Return, ast.Raise)):
            self.blocks[current].statements.append(statement)
            self.edge(current, self._abort_continue())
            return None
        if isinstance(statement, ast.Break):
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][1])
            return None
        if isinstance(statement, ast.Continue):
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][0], "back")
            return None
        self.blocks[current].statements.append(statement)
        return current

    def _lower_if(self, statement: ast.If, current: int) -> int | None:
        self.blocks[current].test = statement.test
        then_entry = self.new_block()
        self.edge(current, then_entry, "true")
        then_exit = self.build_body(statement.body, then_entry)
        else_exit: int | None
        if statement.orelse:
            else_entry = self.new_block()
            self.edge(current, else_entry, "false")
            else_exit = self.build_body(statement.orelse, else_entry)
        else:
            else_exit = current  # false edge added to the join below
        if then_exit is None and else_exit is None:
            return None
        join = self.new_block()
        if then_exit is not None:
            self.edge(then_exit, join)
        if else_exit is not None:
            label = "false" if else_exit is current else ""
            self.edge(else_exit, join, label)
        return join

    def _lower_while(self, statement: ast.While, current: int) -> int:
        head = self.new_block()
        self.edge(current, head)
        self.blocks[head].test = statement.test
        after = self.new_block()
        body_entry = self.new_block()
        self.edge(head, body_entry, "true")
        self.loop_stack.append((head, after))
        body_exit = self.build_body(statement.body, body_entry)
        self.loop_stack.pop()
        if body_exit is not None:
            self.edge(body_exit, head, "back")
        if statement.orelse:
            else_entry = self.new_block()
            self.edge(head, else_entry, "false")
            else_exit = self.build_body(statement.orelse, else_entry)
            if else_exit is not None:
                self.edge(else_exit, after)
        else:
            self.edge(head, after, "false")
        return after

    def _lower_for(self, statement: ast.For | ast.AsyncFor, current: int) -> int:
        head = self.new_block()
        self.edge(current, head)
        self.blocks[head].loop = statement  # type: ignore[assignment]
        after = self.new_block()
        body_entry = self.new_block()
        self.edge(head, body_entry, "true")
        self.loop_stack.append((head, after))
        body_exit = self.build_body(statement.body, body_entry)
        self.loop_stack.pop()
        if body_exit is not None:
            self.edge(body_exit, head, "back")
        if statement.orelse:
            else_entry = self.new_block()
            self.edge(head, else_entry, "false")
            else_exit = self.build_body(statement.orelse, else_entry)
            if else_exit is not None:
                self.edge(else_exit, after)
        else:
            self.edge(head, after, "false")
        return after

    def _lower_try(self, statement: ast.Try, current: int) -> int | None:
        # The finally body is lowered twice: an *abort copy* entered by
        # return/raise routing and by exceptional edges (it continues to
        # the next pending finally or the exit), and a *normal copy* the
        # fall-through path runs before the statement after the try.
        # Sharing one copy would fuse the two continuations and invent
        # paths that skip post-try code; duplication keeps them apart at
        # the cost of the finally statements appearing in two blocks.
        final_abort: int | None = None
        if statement.finalbody:
            final_abort = self.new_block()
            self.finally_stack.append(final_abort)
        body_entry = self.new_block()
        self.edge(current, body_entry)
        self.blocks[body_entry].protected = True
        region: list[int] = [body_entry]
        self.try_regions.append(region)
        body_exit = self.build_body(statement.body, body_entry)
        if body_exit is not None and statement.orelse:
            body_exit = self.build_body(statement.orelse, body_exit)
        self.try_regions.pop()
        handler_exits: list[int | None] = []
        handler_entries: list[int] = []
        for handler in statement.handlers:
            handler_entry = self.new_block()
            handler_entries.append(handler_entry)
            self.blocks[handler_entry].statements.append(handler)
            handler_exits.append(self.build_body(handler.body, handler_entry))
        for block_index in region:
            for handler_entry in handler_entries:
                self.edge(block_index, handler_entry, "except")
        exits = [body_exit, *handler_exits]
        live = [index for index in exits if index is not None]
        if final_abort is not None:
            self.finally_stack.pop()
            # exceptional entry: any statement of the region may raise
            # into the finally, which then continues the propagation
            for block_index in region:
                self.edge(block_index, final_abort, "except")
            abort_exit = self.build_body(statement.finalbody, final_abort)
            if abort_exit is not None:
                self.edge(abort_exit, self._abort_continue())
            if not live:
                return None
            final_entry = self.new_block()
            for index in live:
                self.edge(index, final_entry)
            return self.build_body(statement.finalbody, final_entry)
        if not live:
            return None
        if len(live) == 1:
            return live[0]
        join = self.new_block()
        for index in live:
            self.edge(index, join)
        return join

    def _lower_with(self, statement: ast.With | ast.AsyncWith, current: int) -> int | None:
        for item in statement.items:
            self.blocks[current].statements.append(item)
        return self.build_body(statement.body, current)

    def _lower_match(self, statement: ast.Match, current: int) -> int | None:
        self.blocks[current].statements.append(
            ast.Expr(value=statement.subject)
        )
        exits: list[int] = []
        fell_through = False
        for case in statement.cases:
            case_entry = self.new_block()
            self.edge(current, case_entry, "true")
            case_exit = self.build_body(case.body, case_entry)
            if case_exit is not None:
                exits.append(case_exit)
            if case.pattern is not None and _is_wildcard(case.pattern):
                fell_through = True
        join = self.new_block()
        if not fell_through:
            self.edge(current, join, "false")
        for index in exits:
            self.edge(index, join)
        return join


def _is_wildcard(pattern: ast.pattern) -> bool:
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None


def build_cfg(function: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> CFG:
    """Lower one function definition (or lambda) into a :class:`CFG`."""
    builder = _Builder()
    entry = builder.new_block()
    if isinstance(function, ast.Lambda):
        body: list[ast.stmt] = [ast.Return(value=function.body)]
        name = "<lambda>"
    else:
        body = function.body
        name = function.name
    last = builder.build_body(body, entry)
    exit_index = builder.new_block()
    if last is not None:
        builder.edge(last, exit_index)
    for block in builder.blocks:
        block.successors = [
            (exit_index if target == _EXIT else target, label)
            for target, label in block.successors
        ]
    # drop the duplicate the exit-patch may have introduced
    for block in builder.blocks:
        seen: list[tuple[int, str]] = []
        for pair in block.successors:
            if pair not in seen:
                seen.append(pair)
        block.successors = seen
    return CFG(name=name, blocks=builder.blocks)
