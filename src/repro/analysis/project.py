"""Whole-program context shared by the cross-module rules.

One :class:`Project` is built per ``analyze()`` run from every module the
scan loaded, regardless of how many roots the caller passed.  It exposes
the three views the project rules consume:

* the **module/import graph** — every intra-tree import resolved to the
  most specific scanned module it names (``from ..fd import attrset``
  resolves to ``fd/attrset.py``, not the package ``__init__``), so the
  graph captures logical dependencies rather than package-init side
  effects; strongly connected components of size > 1 are import cycles;
* the **symbol table** — per-module top-level functions, classes with
  their methods, and import aliases, plus a project-wide method-name
  index used to resolve ``obj.method(...)`` calls across files;
* the **reference index** — every identifier referenced anywhere in the
  repo's source, test, benchmark, and example trees, used by the
  dead-export rule.  The repo root is discovered by walking up from the
  scan base to the nearest ``pyproject.toml``; fixture trees without one
  simply fall back to the scanned modules themselves.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from .engine import Module

#: directories (relative to the repo root) scanned for export references
REFERENCE_DIRS = ("src", "tests", "benchmarks", "examples")

#: process-wide cache of reference identifiers, keyed by repo root
_REFERENCE_CACHE: dict[Path, frozenset[str]] = {}


def _type_checking_nodes(tree: ast.Module) -> set[int]:
    """ids of nodes inside ``if TYPE_CHECKING:`` bodies (erased at runtime).

    Imports guarded this way exist only for annotations, so they must not
    contribute edges to the runtime import graph — flagging them as
    cycles would force real imports where none exist.
    """
    erased: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_guard = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if not is_guard:
            continue
        for child in node.body:
            for sub in ast.walk(child):
                erased.add(id(sub))
    return erased


@dataclass(frozen=True)
class ImportEdge:
    """One resolved intra-project import."""

    source: str
    """Importing module relpath."""
    target: str
    """Imported module relpath."""
    line: int


@dataclass
class FunctionDef:
    """One function or method definition in the symbol table."""

    module: str
    """Defining module relpath."""
    qualname: str
    """``ClassName.method`` or bare function name."""
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.qualname)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ModuleSymbols:
    """Top-level definitions and import aliases of one module."""

    functions: dict[str, FunctionDef] = field(default_factory=dict)
    classes: dict[str, dict[str, FunctionDef]] = field(default_factory=dict)
    imported_functions: dict[str, tuple[str, str]] = field(default_factory=dict)
    """Local alias -> (module relpath, original name), resolved in-tree."""


class Project:
    """Everything the whole-program rules need, computed once per run."""

    def __init__(self, modules: list[Module]) -> None:
        self.modules = modules
        self.by_relpath: dict[str, Module] = {
            module.relpath: module for module in modules
        }
        self._edges: list[ImportEdge] | None = None
        self._symbols: dict[str, ModuleSymbols] | None = None
        self._methods_by_name: dict[str, list[FunctionDef]] | None = None

    # -- module graph ------------------------------------------------------

    def import_edges(self) -> list[ImportEdge]:
        """Every intra-tree import, resolved to scanned module relpaths."""
        if self._edges is None:
            edges: list[ImportEdge] = []
            for module in self.modules:
                edges.extend(self._edges_of(module))
            self._edges = edges
        return self._edges

    def _edges_of(self, module: Module) -> list[ImportEdge]:
        edges: list[ImportEdge] = []
        package = list(module.package_parts)
        erased = _type_checking_nodes(module.tree)
        for node in ast.walk(module.tree):
            if id(node) in erased:
                continue  # under `if TYPE_CHECKING:` — no runtime import
            if isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    anchor: list[str] = []
                elif node.level - 1 <= len(package):
                    anchor = package[: len(package) - (node.level - 1)]
                else:
                    continue  # relative import escaping the scanned tree
                base = anchor + (node.module.split(".") if node.module else [])
                for alias in node.names:
                    if alias.name == "*":
                        target = self._resolve(base)
                    else:
                        target = self._resolve(base + [alias.name]) or self._resolve(
                            base
                        )
                    if target is not None and target != module.relpath:
                        edges.append(ImportEdge(module.relpath, target, node.lineno))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._resolve(alias.name.split("."))
                    if target is not None and target != module.relpath:
                        edges.append(ImportEdge(module.relpath, target, node.lineno))
        return edges

    def _resolve(self, parts: list[str]) -> str | None:
        """Map dotted-name parts to a scanned module relpath, or None."""
        if not parts:
            return None
        stem = "/".join(parts)
        for candidate in (f"{stem}.py", f"{stem}/__init__.py"):
            if candidate in self.by_relpath:
                return candidate
        return None

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1, each sorted."""
        graph: dict[str, set[str]] = {m.relpath: set() for m in self.modules}
        for edge in self.import_edges():
            graph[edge.source].add(edge.target)
        # Tarjan's algorithm, iterative to survive deep trees.
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0
        for start in sorted(graph):
            if start in index:
                continue
            work: list[tuple[str, Iterator[str]]] = [
                (start, iter(sorted(graph[start])))
            ]
            index[start] = lowlink[start] = counter
            counter += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index:
                        index[successor] = lowlink[successor] = counter
                        counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(sorted(graph[successor]))))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
        components.sort()
        return components

    # -- symbol table ------------------------------------------------------

    def symbols(self) -> dict[str, ModuleSymbols]:
        if self._symbols is None:
            self._symbols = {
                module.relpath: self._symbols_of(module) for module in self.modules
            }
        return self._symbols

    def _symbols_of(self, module: Module) -> ModuleSymbols:
        table = ModuleSymbols()
        package = list(module.package_parts)
        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table.functions[statement.name] = FunctionDef(
                    module=module.relpath,
                    qualname=statement.name,
                    name=statement.name,
                    node=statement,
                )
            elif isinstance(statement, ast.ClassDef):
                methods: dict[str, FunctionDef] = {}
                for item in statement.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[item.name] = FunctionDef(
                            module=module.relpath,
                            qualname=f"{statement.name}.{item.name}",
                            name=item.name,
                            node=item,
                            class_name=statement.name,
                        )
                table.classes[statement.name] = methods
            elif isinstance(statement, ast.ImportFrom) and statement.level >= 1:
                if statement.level > len(package) + 1:
                    continue
                anchor = package[: len(package) - (statement.level - 1)]
                base = anchor + (
                    statement.module.split(".") if statement.module else []
                )
                target = self._resolve(base)
                if target is None:
                    continue
                for alias in statement.names:
                    if alias.name != "*":
                        table.imported_functions[alias.asname or alias.name] = (
                            target,
                            alias.name,
                        )
        return table

    def methods_by_name(self) -> dict[str, list[FunctionDef]]:
        """Project-wide index: method name -> every class method so named."""
        if self._methods_by_name is None:
            index: dict[str, list[FunctionDef]] = {}
            for table in self.symbols().values():
                for methods in table.classes.values():
                    for method in methods.values():
                        index.setdefault(method.name, []).append(method)
            self._methods_by_name = index
        return self._methods_by_name

    def all_functions(self) -> list[FunctionDef]:
        """Every top-level function and class method, in path order."""
        functions: list[FunctionDef] = []
        for relpath in sorted(self.symbols()):
            table = self.symbols()[relpath]
            functions.extend(table.functions.values())
            for methods in table.classes.values():
                functions.extend(methods.values())
        return functions

    # -- reference index ---------------------------------------------------

    def reference_names(self) -> frozenset[str]:
        """Identifiers referenced anywhere in the repo's reference trees.

        References are collected from ``Name`` nodes, attribute accesses,
        and ``from``-import alias names — string literals deliberately do
        not count.  ``__init__.py`` files are excluded: a re-export chain
        is the export mechanism, not a use of the export.
        """
        root = self.repo_root()
        if root is not None:
            cached = _REFERENCE_CACHE.get(root)
            if cached is not None:
                return cached
        names: set[str] = set()
        seen_paths: set[Path] = set()
        for module in self.modules:
            if module.path.name != "__init__.py":
                seen_paths.add(module.path)
                _collect_references(module.tree, names)
        if root is not None:
            for directory in REFERENCE_DIRS:
                base = root / directory
                if not base.is_dir():
                    continue
                for path in sorted(base.rglob("*.py")):
                    if (
                        path.name == "__init__.py"
                        or "__pycache__" in path.parts
                        or path in seen_paths
                    ):
                        continue
                    try:
                        tree = ast.parse(path.read_text(encoding="utf-8"))
                    except (SyntaxError, OSError, UnicodeDecodeError):
                        continue
                    _collect_references(tree, names)
        frozen = frozenset(names)
        if root is not None:
            _REFERENCE_CACHE[root] = frozen
        return frozen

    def repo_root(self) -> Path | None:
        """The nearest ancestor of the scan base with a ``pyproject.toml``."""
        if not self.modules:
            return None
        anchor = self.modules[0].path.parent
        for directory in (anchor, *anchor.parents):
            if (directory / "pyproject.toml").exists():
                return directory
        return None


def _collect_references(tree: ast.Module, names: set[str]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.name)
