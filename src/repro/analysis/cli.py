"""Command-line front end: ``repro-lint`` / ``python -m repro.analysis``.

Examples::

    repro-lint                        # lint the installed repro package
    repro-lint src/repro tests        # explicit roots
    repro-lint --format json          # machine-readable findings
    repro-lint --format github        # ::error workflow annotations (CI)
    repro-lint --format sarif         # SARIF 2.1.0 (code-scanning upload)
    repro-lint --changed              # report only git-touched files
    repro-lint --select RPR001,RPR004 # subset of rules
    repro-lint --update-baseline      # grandfather the current findings
    repro-lint --list-rules           # document every rule code
    repro-lint src/repro --sanitize build/sanitized
                                      # emit the contract-asserting shadow
                                      # package (see analysis/sanitize.py)

Exit status: 0 when no *new* findings (baselined ones don't count),
1 when new findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from collections.abc import Sequence
from pathlib import Path

from . import baseline as baseline_io
from .engine import AnalysisResult, Finding, analyze
from .rules import default_rules

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


def _default_root() -> Path:
    """The ``repro`` package this module is installed in."""
    return Path(__file__).resolve().parents[1]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for the EulerFD reproduction: per-file "
            "lint (RPR001-RPR006), whole-program import-layering, "
            "purity-contract, and dead-export passes (RPR101-RPR103), "
            "flow-sensitive dataflow rules for parallel-state "
            "escape, merge-order sensitivity, and numeric-width "
            "overflow (RPR106-RPR108), and typestate resource-lifecycle "
            "rules for leaks, use-after-release, and release-protocol "
            "violations (RPR109-RPR111), plus metric-name discipline "
            "for the observability catalog (RPR112)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help=(
            "output format (default: text); 'github' emits ::error "
            "workflow annotations plus the text summary, 'sarif' a "
            "SARIF 2.1.0 log for code-scanning upload"
        ),
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report findings only for files the git working tree "
            "touches (diff against HEAD plus untracked files); the full "
            "scan still runs so cross-file rules stay sound, only the "
            "report is scoped"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_NAME} next to the first scan root, "
            "when present)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to absorb every current finding, then exit 0",
    )
    parser.add_argument(
        "--fail-on-findings",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="exit 1 when new findings exist (default: on; CI passes it explicitly)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the incremental result cache (.repro-lint-cache/ at "
            "the repository root); caching never changes output, only "
            "skips re-analysis of unchanged files"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule code and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print one rule's rationale, example, and suppression syntax",
    )
    parser.add_argument(
        "--sanitize",
        type=Path,
        metavar="OUTDIR",
        help=(
            "instead of linting, write a shadow copy of the (single) "
            "package root with every docstring contract enforced as a "
            "runtime assertion; put OUTDIR on PYTHONPATH to test it"
        ),
    )
    return parser


def _resolve_baseline_path(explicit: Path | None, roots: Sequence[Path]) -> Path | None:
    if explicit is not None:
        return explicit
    if not roots:
        return None
    anchor = roots[0].resolve()
    if anchor.is_file():
        anchor = anchor.parent
    for directory in (anchor, *anchor.parents):
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.exists():
            return candidate
    return None


def _render_text(
    new: list[Finding], grandfathered: list[Finding], result: AnalysisResult
) -> str:
    lines = [finding.format() for finding in new]
    if grandfathered:
        lines.append(
            f"({len(grandfathered)} baselined finding"
            f"{'s' if len(grandfathered) != 1 else ''} suppressed)"
        )
    for failed in result.parse_errors:
        lines.append(f"{failed}: could not parse (skipped)")
    summary = (
        f"{result.files_scanned} files scanned, {len(new)} finding"
        f"{'s' if len(new) != 1 else ''}"
    )
    lines.append(summary)
    return "\n".join(lines)


def _render_json(
    new: list[Finding], grandfathered: list[Finding], result: AnalysisResult
) -> str:
    def encode(finding: Finding) -> dict[str, object]:
        return {
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule,
            "message": finding.message,
        }

    return json.dumps(
        {
            "files_scanned": result.files_scanned,
            "parse_errors": result.parse_errors,
            "findings": [encode(finding) for finding in new],
            "baselined": [encode(finding) for finding in grandfathered],
        },
        indent=2,
    )


def _display_path(finding: Finding, result: AnalysisResult) -> str:
    """Map a scan-root-relative finding path back to a cwd-relative one.

    GitHub (annotations and SARIF alike) attaches findings to the diff
    only when paths are workspace-relative, so the absolute paths the
    engine recorded are preferred over the scan-relative spelling.
    """
    recorded = result.paths.get(finding.path)
    if recorded is None:
        return finding.path
    try:
        return Path(recorded).relative_to(Path.cwd()).as_posix()
    except ValueError:
        return recorded


def _render_sarif(
    new: list[Finding], grandfathered: list[Finding], result: AnalysisResult
) -> str:
    """A SARIF 2.1.0 log: one run, rule metadata, one result per finding.

    Baselined findings are included with an external suppression rather
    than dropped, so code-scanning shows them as closed instead of
    re-opening them on every upload.  Columns are 1-based in SARIF;
    findings carry ast's 0-based ``col_offset``.
    """
    rules = default_rules()
    rule_index = {rule.code: position for position, rule in enumerate(rules)}

    def encode(finding: Finding, suppressed: bool) -> dict[str, object]:
        sarif_result: dict[str, object] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": "note" if suppressed else "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _display_path(finding, result),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if suppressed:
            sarif_result["suppressions"] = [{"kind": "external"}]
        return sarif_result

    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/eulerfd-repro"
                        ),
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.name},
                                "fullDescription": {"text": rule.rationale},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule in rules
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": Path.cwd().as_uri() + "/"}
                },
                "results": [
                    *(encode(finding, False) for finding in new),
                    *(encode(finding, True) for finding in grandfathered),
                ],
            }
        ],
    }
    return json.dumps(log, indent=2)


def _changed_files(parser: argparse.ArgumentParser) -> set[str]:
    """Absolute paths the working tree touches: diff vs HEAD + untracked."""
    import subprocess

    def run(*arguments: str) -> list[str]:
        completed = subprocess.run(
            ["git", *arguments],
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            parser.error(
                "--changed requires a git checkout: "
                + completed.stderr.strip().splitlines()[-1]
            )
        return [line for line in completed.stdout.splitlines() if line]

    toplevel = Path(run("rev-parse", "--show-toplevel")[0])
    changed = run("diff", "--name-only", "HEAD")
    untracked = run("ls-files", "--others", "--exclude-standard")
    return {
        str((toplevel / relative).resolve())
        for relative in (*changed, *untracked)
    }


def _scope_to_changed(
    findings: list[Finding], result: AnalysisResult, changed: set[str]
) -> list[Finding]:
    return [
        finding
        for finding in findings
        if str(Path(result.paths.get(finding.path, finding.path)).resolve())
        in changed
    ]


def _annotation_escape(text: str) -> str:
    """Escape a message for a GitHub workflow-command property/value."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _render_github(
    new: list[Finding], grandfathered: list[Finding], result: AnalysisResult
) -> str:
    """``::error`` workflow annotations, one per new finding.

    Annotation paths must be workspace-relative for GitHub to attach
    them to the diff, so the scan-root-relative finding paths are mapped
    back through the absolute paths the engine recorded.
    """
    lines = []
    for finding in new:
        display = _display_path(finding, result)
        lines.append(
            f"::error file={_annotation_escape(display)},"
            f"line={finding.line},col={finding.col},"
            f"title={finding.rule}::{_annotation_escape(finding.message)}"
        )
    if grandfathered:
        lines.append(
            f"({len(grandfathered)} baselined finding"
            f"{'s' if len(grandfathered) != 1 else ''} suppressed)"
        )
    for failed in result.parse_errors:
        lines.append(f"{failed}: could not parse (skipped)")
    lines.append(
        f"{result.files_scanned} files scanned, {len(new)} finding"
        f"{'s' if len(new) != 1 else ''}"
    )
    return "\n".join(lines)


def _list_rules() -> str:
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def explain_rule(code: str) -> str:
    """One rule's documentation: rationale, example, suppression syntax.

    Raises ``ValueError`` for an unknown code; the CLI surface is
    ``repro-lint --explain RPR107``.
    """
    normalized = code.strip().upper()
    for rule in default_rules():
        if rule.code != normalized:
            continue
        lines = [f"{rule.code} — {rule.name}", ""]
        lines.extend(textwrap.wrap(rule.rationale, width=72))
        if rule.example:
            lines.extend(["", "example:", textwrap.indent(rule.example, "  ")])
        lines.extend(
            [
                "",
                "suppress with:",
                f"  one line:    # repro-lint: disable={rule.code}",
                f"  whole file:  # repro-lint: disable-file={rule.code}"
                "   (in the first 30 lines)",
                "  repo-wide:   repro-lint --update-baseline",
            ]
        )
        if rule.code == "RPR107":
            lines.append(
                "  proven order:  # pragma: repro-lint ordered"
                "   (site-level justification)"
            )
        if rule.code in ("RPR109", "RPR110", "RPR111"):
            lines.extend(
                [
                    "",
                    "declare ownership in the docstring instead of "
                    "suppressing:",
                    "  Owns: return           (caller must release the "
                    "returned handle)",
                    "  Owns: return via call  ((handle, cleanup) pair; "
                    "caller calls cleanup)",
                    "  Owns: self             (a later method of the same "
                    "object releases it)",
                    "  Owns: p via <protocol> (function takes over "
                    "releasing parameter p)",
                    "  Borrows: p, q          (parameters used but never "
                    "released here)",
                ]
            )
        if rule.code == "RPR112":
            lines.extend(
                [
                    "",
                    "the metric-name catalog lives in repro.obs.names; "
                    "add a constant",
                    "(plus a CATALOG help string) there and pass it at "
                    "the call site.",
                ]
            )
        if rule.code == "RPR113":
            lines.extend(
                [
                    "",
                    "sanctioned wideners: relation/validate.py (the int64 "
                    "fold kernel and",
                    "rhs_labels) and engine/columnar.py (the encoded "
                    "kernels' uint64",
                    "accumulators).  Buffer construction with "
                    "dtype=np.int64 and",
                    "astype(np.int64, copy=False) normalization are not "
                    "flagged.",
                ]
            )
        return "\n".join(lines)
    known = ", ".join(rule.code for rule in default_rules())
    raise ValueError(f"unknown rule code: {code!r} (known: {known})")


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Output piped into e.g. `head`; the findings already printed
        # are all the consumer wanted.  Exit quietly via the devnull
        # dance so the interpreter's stream flush does not traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


def _run(argv: Sequence[str] | None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    if options.explain:
        try:
            print(explain_rule(options.explain))
        except ValueError as error:
            parser.error(str(error))
        return 0

    roots = list(options.paths) or [_default_root()]
    for root in roots:
        if not root.exists():
            parser.error(f"path does not exist: {root}")

    if options.sanitize is not None:
        if len(roots) != 1:
            parser.error("--sanitize takes exactly one package root")
        from .sanitize import sanitize_package

        try:
            report = sanitize_package(roots[0], options.sanitize)
        except ValueError as error:
            parser.error(str(error))
        print(report.summary())
        return 0

    select = None
    if options.select:
        select = [code.strip() for code in options.select.split(",") if code.strip()]
        known = {rule.code for rule in default_rules()}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")

    cache = None
    if not options.no_cache:
        from .cache import LintCache, find_cache_dir

        cache_dir = find_cache_dir(roots[0])
        if cache_dir is not None:
            cache = LintCache(cache_dir)

    result = analyze(roots, default_rules(), select=select, cache=cache)

    baseline_path = _resolve_baseline_path(options.baseline, roots)
    if options.update_baseline:
        target = baseline_path or roots[0].resolve() / DEFAULT_BASELINE_NAME
        if target.is_dir():
            target = target / DEFAULT_BASELINE_NAME
        baseline_io.save(target, result.findings)
        print(f"baseline written: {target} ({len(result.findings)} findings)")
        return 0

    try:
        known_findings = baseline_io.load(baseline_path) if baseline_path else None
    except ValueError as error:
        parser.error(str(error))
    if known_findings:
        new, grandfathered = baseline_io.partition(result.findings, known_findings)
    else:
        new, grandfathered = result.findings, []

    if options.changed:
        changed = _changed_files(parser)
        new = _scope_to_changed(new, result, changed)
        grandfathered = _scope_to_changed(grandfathered, result, changed)

    if options.format == "json":
        print(_render_json(new, grandfathered, result))
    elif options.format == "github":
        print(_render_github(new, grandfathered, result))
    elif options.format == "sarif":
        print(_render_sarif(new, grandfathered, result))
    else:
        print(_render_text(new, grandfathered, result))

    if result.parse_errors:
        return 1
    if new and options.fail_on_findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
