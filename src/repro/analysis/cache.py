"""Content-hash incremental cache for ``repro-lint``.

Lint results are a pure function of (file contents, rule set, linter
source), so the CLI memoizes them under ``.repro-lint-cache/`` at the
repository root and replays them when nothing changed:

* **file entries** — per-file findings keyed by a digest of the file's
  relpath, bytes, and the active rule codes; editing one module re-lints
  only that module's per-file rules on the next run;
* **tree entries** — the complete :class:`AnalysisResult` keyed by the
  digest of *every* scanned file.  A full hit skips parsing and the
  whole-program passes (the expensive part) entirely.

Both kinds of key are salted with a hash of the analysis package's own
source, so changing a rule, the engine, or this cache invalidates every
stored result — there is no version knob to forget to bump.  Corrupt or
foreign cache files are ignored, never an error: the cache can always be
deleted (or bypassed with ``--no-cache``) without changing any output.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .engine import AnalysisResult, Finding

_VERSION = 1
_MAX_FILE_ENTRIES = 4096
_MAX_TREE_ENTRIES = 16
CACHE_DIR_NAME = ".repro-lint-cache"


def _package_salt() -> str:
    """Digest of the analysis package's own source files."""
    package = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _encode_finding(finding: Finding) -> list:
    return [finding.path, finding.line, finding.col, finding.rule, finding.message]


def _decode_finding(row: list) -> Finding:
    path, line, col, rule, message = row
    return Finding(
        path=str(path), line=int(line), col=int(col), rule=str(rule),
        message=str(message),
    )


def _encode_result(result: AnalysisResult) -> dict:
    return {
        "files_scanned": result.files_scanned,
        "parse_errors": list(result.parse_errors),
        "paths": dict(result.paths),
        "findings": [_encode_finding(finding) for finding in result.findings],
    }


def _decode_result(entry: dict) -> AnalysisResult:
    return AnalysisResult(
        findings=[_decode_finding(row) for row in entry["findings"]],
        files_scanned=int(entry["files_scanned"]),
        parse_errors=[str(item) for item in entry["parse_errors"]],
        paths={str(key): str(value) for key, value in entry["paths"].items()},
    )


def find_cache_dir(anchor: Path) -> Path | None:
    """``.repro-lint-cache/`` beside the nearest repo marker above ``anchor``.

    Walks up looking for ``pyproject.toml`` or ``.git`` so the cache
    lands at the repository root regardless of which subtree was linted;
    returns None (caching off) when no marker exists — scanning an
    arbitrary directory must not litter it.
    """
    anchor = anchor.resolve()
    if anchor.is_file():
        anchor = anchor.parent
    for directory in (anchor, *anchor.parents):
        if (directory / "pyproject.toml").exists() or (directory / ".git").exists():
            return directory / CACHE_DIR_NAME
    return None


class LintCache:
    """Findings memoized on disk, keyed by content digests."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.path = directory / "cache.json"
        self.salt = _package_salt()
        self._files: dict[str, list] = {}
        self._trees: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("version") != _VERSION:
            return
        if raw.get("salt") != self.salt:
            return  # the linter itself changed: every entry is stale
        files = raw.get("files")
        trees = raw.get("trees")
        if isinstance(files, dict):
            self._files = files
        if isinstance(trees, dict):
            self._trees = trees

    # -- keys ------------------------------------------------------------

    def file_key(self, relpath: str, data: bytes, codes: str) -> str:
        digest = hashlib.sha256()
        digest.update(codes.encode())
        digest.update(b"\0")
        digest.update(relpath.encode())
        digest.update(b"\0")
        digest.update(data)
        return digest.hexdigest()

    def tree_key(self, file_keys: list[str], codes: str) -> str:
        digest = hashlib.sha256()
        digest.update(codes.encode())
        for key in file_keys:
            digest.update(b"\0")
            digest.update(key.encode())
        return digest.hexdigest()

    # -- per-file entries ------------------------------------------------

    def get_file(self, key: str) -> list[Finding] | None:
        entry = self._files.get(key)
        if entry is None:
            return None
        try:
            findings = [_decode_finding(row) for row in entry]
        except (KeyError, TypeError, ValueError):
            return None
        self._files[key] = self._files.pop(key)  # LRU touch
        return findings

    def put_file(self, key: str, findings: list[Finding]) -> None:
        self._files.pop(key, None)
        self._files[key] = [_encode_finding(finding) for finding in findings]
        self._dirty = True

    # -- whole-run entries -----------------------------------------------

    def get_result(self, key: str) -> AnalysisResult | None:
        entry = self._trees.get(key)
        if entry is None:
            return None
        try:
            result = _decode_result(entry)
        except (KeyError, TypeError, ValueError):
            return None
        self._trees[key] = self._trees.pop(key)  # LRU touch
        return result

    def put_result(self, key: str, result: AnalysisResult) -> None:
        self._trees.pop(key, None)
        self._trees[key] = _encode_result(result)
        self._dirty = True

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        """Write back (atomically) if anything changed; trim to the LRU caps."""
        if not self._dirty:
            return
        while len(self._files) > _MAX_FILE_ENTRIES:
            self._files.pop(next(iter(self._files)))
        while len(self._trees) > _MAX_TREE_ENTRIES:
            self._trees.pop(next(iter(self._trees)))
        payload = {
            "version": _VERSION,
            "salt": self.salt,
            "files": self._files,
            "trees": self._trees,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            ignore = self.directory / ".gitignore"
            if not ignore.exists():
                ignore.write_text("*\n")
            scratch = self.path.with_suffix(".json.tmp")
            scratch.write_text(json.dumps(payload))
            scratch.replace(self.path)
        except OSError:
            return  # read-only checkout: caching silently off
        self._dirty = False
