"""Runtime enforcement of the docstring contracts (``--sanitize``).

This module is *copied into the root of the sanitized package* by
:mod:`repro.analysis.sanitize`; instrumented modules import it relatively
(``from ._contracts_runtime import contract``) so the shadow package
stays self-contained.  It therefore imports nothing from ``repro`` and
depends only on the standard library.

The :func:`contract` decorator turns one declared contract into checks
around every call:

* ``Pure:`` / undeclared parameters of ``Mutates:`` — every parameter
  the contract promises untouched is snapshotted (pickled) before the
  call and compared after; a differing snapshot raises
  :class:`ContractViolation`.  Unpicklable values (open files, live
  generators) are skipped rather than consumed or guessed at.
* ``Monotone: p via probe`` — the members of ``p`` (``list(p)``) are
  collected before the call; afterwards every old member must still
  satisfy ``p.probe(member)``.  This is the negative cover's append-only
  promise: inversion may consult it, never shrink it.

Checks are budgeted: after ``REPRO_CONTRACTS_MAX_CHECKS`` calls
(default 128) a wrapper becomes a plain passthrough, so instrumented
test runs stay roughly linear.  Set ``REPRO_CONTRACTS_DISABLE=1`` to
strip the wrappers entirely at import time.
"""

from __future__ import annotations

import functools
import inspect
import os
import pickle
from collections.abc import Callable, Iterable

_SKIP = object()
"""Sentinel for parameters that could not be snapshotted."""

_PROTOCOL = 4


class ContractViolation(AssertionError):
    """An instrumented call broke its declared docstring contract."""


def _max_checks() -> int:
    try:
        return int(os.environ.get("REPRO_CONTRACTS_MAX_CHECKS", "128"))
    except ValueError:
        return 128


def _disabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS_DISABLE", "") == "1"


def _snapshot(value: object) -> object:
    """Pickle a value for later comparison; ``_SKIP`` when impossible.

    Byte-comparing two pickles of the *same, unmutated* object is
    reliable: container iteration order only changes on mutation.
    """
    try:
        return pickle.dumps(value, protocol=_PROTOCOL)
    except Exception:
        return _SKIP


def _members(value: object) -> object:
    """Snapshot the membership of an iterable contract parameter."""
    if not isinstance(value, Iterable):
        return _SKIP
    try:
        return list(value)
    except Exception:
        return _SKIP


def contract(
    pure: bool = False,
    mutates: tuple[str, ...] = (),
    monotone: tuple[tuple[str, str], ...] = (),
) -> Callable:
    """Decorator factory the sanitizer injects above contracted kernels."""
    allowed = set(mutates)
    allowed.update(name for name, _ in monotone)

    def decorate(func: Callable) -> Callable:
        if _disabled():
            return func
        try:
            signature = inspect.signature(func)
        except (TypeError, ValueError):  # builtins/descriptors: leave as-is
            return func
        budget = _max_checks()
        label = getattr(func, "__qualname__", getattr(func, "__name__", "?"))
        state = {"checks": 0}

        @functools.wraps(func)
        def wrapper(*args: object, **kwargs: object) -> object:
            if state["checks"] >= budget:
                return func(*args, **kwargs)
            state["checks"] += 1
            try:
                bound = signature.bind(*args, **kwargs)
            except TypeError:
                # Let the call itself raise the real signature error.
                return func(*args, **kwargs)
            frozen: list[tuple[str, object, object]] = []
            for name, value in bound.arguments.items():
                if pure or name not in allowed:
                    frozen.append((name, value, _snapshot(value)))
            monotone_members: list[tuple[str, str, object, list]] = []
            for name, probe in monotone:
                if name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                members = _members(value)
                if members is not _SKIP:
                    monotone_members.append((name, probe, value, members))
            result = func(*args, **kwargs)
            for name, value, before in frozen:
                if before is _SKIP:
                    continue
                if _snapshot(value) != before:
                    raise ContractViolation(
                        f"{label}: parameter {name!r} was mutated but the "
                        "contract promises it untouched"
                    )
            for name, probe, value, members in monotone_members:
                check = getattr(value, probe, None)
                if check is None:
                    continue
                for member in members:
                    if not check(member):
                        raise ContractViolation(
                            f"{label}: Monotone contract broken — "
                            f"{name}.{probe}({member!r}) no longer holds "
                            "for a member present before the call"
                        )
            return result

        return wrapper

    return decorate
