"""Runtime enforcement of the docstring contracts (``--sanitize``).

This module is *copied into the root of the sanitized package* by
:mod:`repro.analysis.sanitize`; instrumented modules import it relatively
(``from ._contracts_runtime import contract``) so the shadow package
stays self-contained.  It therefore imports nothing from ``repro`` and
depends only on the standard library.

The :func:`contract` decorator turns one declared contract into checks
around every call:

* ``Pure:`` / undeclared parameters of ``Mutates:`` — every parameter
  the contract promises untouched is snapshotted (pickled) before the
  call and compared after; a differing snapshot raises
  :class:`ContractViolation`.  Unpicklable values (open files, live
  generators) are skipped rather than consumed or guessed at.
* ``Monotone: p via probe`` — the members of ``p`` (``list(p)``) are
  collected before the call; afterwards every old member must still
  satisfy ``p.probe(member)``.  This is the negative cover's append-only
  promise: inversion may consult it, never shrink it.

Checks are budgeted: after ``REPRO_CONTRACTS_MAX_CHECKS`` calls
(default 128) a wrapper becomes a plain passthrough, so instrumented
test runs stay roughly linear.  Set ``REPRO_CONTRACTS_DISABLE=1`` to
strip the wrappers entirely at import time.

The :func:`probe` decorator carries the *runtime* halves of the
dataflow rules (RPR107/RPR108) into the sanitized tree:

* ``shard_permutation`` (on ``WorkerPool.map_chunks``) — re-dispatches
  the same chunk plan in reversed order and asserts the index-restored
  results are identical, i.e. the merge really is permutation-invariant
  and not accidentally completion-order dependent.  Only the
  deterministic kernels are replayed (wall-time payloads would differ by
  construction), and only on a non-serial pool with 2+ chunks.
* ``fold_overflow`` (on ``fold_labels``) — recomputes the fold's
  distinct-group count with unbounded Python ints and asserts the int64
  result kept every ``(key, label)`` pair distinct: a silent 2^64 wrap
  shows up as collided groups.
* ``live_resources`` (on ``WorkerPool.close``) — the runtime half of the
  typestate rules (RPR109–RPR111).  Per call it asserts the closed pool
  really released everything (no surviving publications or executor) and
  that no ``repro_shm_<pid>_*`` segment of this process lingers in
  ``/dev/shm`` without a live owning pool; installing the probe also
  registers a process-exit check (running after ``close_all_pools``)
  that asserts zero surviving own-pid segments and a balanced
  ``use_context`` stack, exiting non-zero on violation so CI fails.

Probes budget separately (``REPRO_PROBES_MAX_CHECKS``, default 32 — they
re-run kernels, so they are costlier than snapshots) and can be disabled
with ``REPRO_PROBES_DISABLE=1``.  numpy is imported lazily inside the
fold check so this shim still imports with the standard library alone.
"""

from __future__ import annotations

import functools
import inspect
import os
import pickle
from collections.abc import Callable, Iterable

_SKIP = object()
"""Sentinel for parameters that could not be snapshotted."""

_PROTOCOL = 4


class ContractViolation(AssertionError):
    """An instrumented call broke its declared docstring contract."""


class ProbeViolation(AssertionError):
    """An instrumented call failed a runtime determinism/overflow probe."""


def _max_checks() -> int:
    try:
        return int(os.environ.get("REPRO_CONTRACTS_MAX_CHECKS", "128"))
    except ValueError:
        return 128


def _disabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS_DISABLE", "") == "1"


def _snapshot(value: object) -> object:
    """Pickle a value for later comparison; ``_SKIP`` when impossible.

    Byte-comparing two pickles of the *same, unmutated* object is
    reliable: container iteration order only changes on mutation.
    """
    try:
        return pickle.dumps(value, protocol=_PROTOCOL)
    except Exception:
        return _SKIP


def _members(value: object) -> object:
    """Snapshot the membership of an iterable contract parameter."""
    if not isinstance(value, Iterable):
        return _SKIP
    try:
        return list(value)
    except Exception:
        return _SKIP


def _probes_max_checks() -> int:
    try:
        return int(os.environ.get("REPRO_PROBES_MAX_CHECKS", "32"))
    except ValueError:
        return 32


def _probes_disabled() -> bool:
    return os.environ.get("REPRO_PROBES_DISABLE", "") == "1"


#: task kernels whose payloads are deterministic data (safe to replay);
#: the bench-matrix runner `_call_task` returns wall times and is not.
_PERMUTATION_SAFE_TASKS = frozenset(
    {"_agree_masks_task", "_distinct_masks_task", "_validate_task"}
)


def _check_shard_permutation(
    func: Callable, args: tuple, kwargs: dict, result: object
) -> None:
    """Replay ``map_chunks`` with the chunk plan reversed; results must
    restore to the same list once indexed back."""
    if kwargs or len(args) != 3:
        return  # unusual call shape: nothing to assert
    pool, task_fn, tasks = args
    if getattr(task_fn, "__name__", "") not in _PERMUTATION_SAFE_TASKS:
        return
    if getattr(pool, "is_serial", True) or len(tasks) <= 1:
        return
    snapshot = (pool.busy_seconds, pool.tasks_dispatched, pool.chunks_dispatched)
    try:
        replay = func(pool, task_fn, list(reversed(list(tasks))))
    finally:
        # the replay is a shadow dispatch: keep the accounting untouched
        pool.busy_seconds, pool.tasks_dispatched, pool.chunks_dispatched = snapshot
    if list(reversed(replay)) != list(result):
        raise ProbeViolation(
            f"map_chunks({task_fn.__name__}): dispatching the same chunk "
            "plan in reversed order changed the index-restored results — "
            "the merge is completion-order dependent, not chunk-indexed"
        )


def _check_fold_overflow(
    func: Callable, args: tuple, kwargs: dict, result: object
) -> None:
    """Recompute the fold's distinct-group count with unbounded ints."""
    import numpy  # lazy: the shim must import with the stdlib alone

    values = [*args, *kwargs.values()]
    if len(values) != 2:
        return
    keys, labels = values
    try:
        pairs = len(set(zip(keys.tolist(), labels.tolist())))
        distinct = int(numpy.unique(numpy.asarray(result)).size)
    except (AttributeError, TypeError, ValueError):
        return
    if distinct != pairs:
        raise ProbeViolation(
            f"fold_labels: int64 fold produced {distinct} distinct keys "
            f"for {pairs} distinct (key, label) pairs — the fold wrapped "
            "and collided groups"
        )


def _segment_prefix(package: str) -> str:
    """The engine's shared-memory name prefix, read from its shm module."""
    import sys

    shm = sys.modules.get(package + ".shm")
    return getattr(shm, "SEGMENT_PREFIX", "repro_shm_")


def _own_segments(prefix: str) -> set[str]:
    """``/dev/shm`` entries this process created (empty off-Linux)."""
    directory = "/dev/shm"
    if not os.path.isdir(directory):
        return set()
    marker = f"{prefix}{os.getpid()}_"
    try:
        return {name for name in os.listdir(directory) if name.startswith(marker)}
    except OSError:  # pragma: no cover - directory vanished mid-scan
        return set()


def _pool_owned_segments(pool_type: type) -> set[str]:
    """Segment names some live pool still legitimately owns."""
    import gc

    owned: set[str] = set()
    for candidate in gc.get_objects():
        if not isinstance(candidate, pool_type):
            continue
        for entry in list(getattr(candidate, "_published", {}).values()):
            name = getattr(entry[1], "name", None)
            if name:
                owned.add(name)
    return owned


def _check_live_resources(
    func: Callable, args: tuple, kwargs: dict, result: object
) -> None:
    """After ``close()``: the pool holds nothing, and every surviving
    own-pid segment belongs to some other still-open pool."""
    if kwargs or len(args) != 1:
        return
    pool = args[0]
    if getattr(pool, "_published", None):
        raise ProbeViolation(
            "WorkerPool.close: shared-memory publications survived close()"
        )
    if getattr(pool, "_executor", None) is not None:
        raise ProbeViolation("WorkerPool.close: the executor survived close()")
    package = type(pool).__module__.rsplit(".", 1)[0]
    leftovers = _own_segments(_segment_prefix(package))
    if not leftovers:
        return
    orphans = leftovers - _pool_owned_segments(type(pool))
    if orphans:
        raise ProbeViolation(
            "WorkerPool.close: shared-memory segment(s) with no live "
            f"owning pool remain in /dev/shm: {sorted(orphans)}"
        )


_EXIT_CHECK = {"registered": False}


def _exit_live_resources_check(module_name: str) -> None:
    """Process-exit assertion: no own-pid segments, balanced contexts.

    Runs after ``close_all_pools`` (registered earlier, so LIFO ordering
    runs it first).  A violation prints the probe failure and exits
    non-zero — an ``atexit`` exception alone would not fail CI.
    """
    import gc
    import sys

    gc.collect()  # run __del__ closers of directly-constructed pools
    package = module_name.rsplit(".", 1)[0]
    problems: list[str] = []
    leftovers = _own_segments(_segment_prefix(package))
    if leftovers:
        problems.append(
            f"shared-memory segment(s) leaked past interpreter exit: "
            f"{sorted(leftovers)}"
        )
    context = sys.modules.get(package + ".context")
    stack = getattr(getattr(context, "_ACTIVE", None), "stack", None)
    if stack:
        problems.append(
            f"execution-context stack unbalanced at exit: {len(stack)} "
            "frame(s) never popped"
        )
    if problems:
        print(
            "ProbeViolation: live-resource exit check failed: "
            + "; ".join(problems),
            file=sys.stderr,
        )
        os._exit(70)


def _register_exit_check(func: Callable) -> None:
    if _EXIT_CHECK["registered"]:
        return
    _EXIT_CHECK["registered"] = True
    import atexit

    atexit.register(_exit_live_resources_check, func.__module__)


_PROBE_CHECKS: dict[str, Callable] = {
    "shard_permutation": _check_shard_permutation,
    "fold_overflow": _check_fold_overflow,
    "live_resources": _check_live_resources,
}


def probe(name: str) -> Callable:
    """Decorator factory the sanitizer injects above probed kernels."""

    def decorate(func: Callable) -> Callable:
        check = _PROBE_CHECKS.get(name)
        if check is None or _probes_disabled():
            return func
        if name == "live_resources":
            _register_exit_check(func)
        budget = _probes_max_checks()
        state = {"checks": 0}

        @functools.wraps(func)
        def wrapper(*args: object, **kwargs: object) -> object:
            result = func(*args, **kwargs)
            if state["checks"] < budget:
                state["checks"] += 1
                check(func, args, kwargs, result)
            return result

        return wrapper

    return decorate


def contract(
    pure: bool = False,
    mutates: tuple[str, ...] = (),
    monotone: tuple[tuple[str, str], ...] = (),
) -> Callable:
    """Decorator factory the sanitizer injects above contracted kernels."""
    allowed = set(mutates)
    allowed.update(name for name, _ in monotone)

    def decorate(func: Callable) -> Callable:
        if _disabled():
            return func
        try:
            signature = inspect.signature(func)
        except (TypeError, ValueError):  # builtins/descriptors: leave as-is
            return func
        budget = _max_checks()
        label = getattr(func, "__qualname__", getattr(func, "__name__", "?"))
        state = {"checks": 0}

        @functools.wraps(func)
        def wrapper(*args: object, **kwargs: object) -> object:
            if state["checks"] >= budget:
                return func(*args, **kwargs)
            state["checks"] += 1
            try:
                bound = signature.bind(*args, **kwargs)
            except TypeError:
                # Let the call itself raise the real signature error.
                return func(*args, **kwargs)
            frozen: list[tuple[str, object, object]] = []
            for name, value in bound.arguments.items():
                if pure or name not in allowed:
                    frozen.append((name, value, _snapshot(value)))
            monotone_members: list[tuple[str, str, object, list]] = []
            for name, probe in monotone:
                if name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                members = _members(value)
                if members is not _SKIP:
                    monotone_members.append((name, probe, value, members))
            result = func(*args, **kwargs)
            for name, value, before in frozen:
                if before is _SKIP:
                    continue
                if _snapshot(value) != before:
                    raise ContractViolation(
                        f"{label}: parameter {name!r} was mutated but the "
                        "contract promises it untouched"
                    )
            for name, probe, value, members in monotone_members:
                check = getattr(value, probe, None)
                if check is None:
                    continue
                for member in members:
                    if not check(member):
                        raise ContractViolation(
                            f"{label}: Monotone contract broken — "
                            f"{name}.{probe}({member!r}) no longer holds "
                            "for a member present before the call"
                        )
            return result

        return wrapper

    return decorate
