"""Generic forward dataflow over :mod:`repro.analysis.cfg` graphs.

A :class:`ForwardAnalysis` supplies the abstract domain — initial state,
join, equality, per-statement transfer — and :func:`run_forward` computes
the least fixpoint with a worklist.  Two hooks give the rules the extra
precision they need:

* :meth:`ForwardAnalysis.refine` sees the branch condition and which
  edge was taken, so a guard like ``if bound * card >= LIMIT: …`` can
  mark values proven safe on the false edge (path sensitivity without
  path enumeration);
* :meth:`ForwardAnalysis.widen` replaces the join once a block's input
  has changed :data:`WIDEN_AFTER` times, so domains with infinite ascent
  (the bit-width domain, where ``keys = keys * card`` grows every loop
  iteration) still terminate.

States must be treated as immutable: transfer functions return fresh
values and never mutate their argument, otherwise the fixpoint's
convergence test lies.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterator

from .cfg import CFG

WIDEN_AFTER = 3
"""Joins applied to a block input before switching to widening."""

_MAX_SWEEPS = 64
"""Hard per-block visit bound; a backstop, not a tuning knob — any
monotone domain with working widening converges far earlier."""


class ForwardAnalysis:
    """Abstract domain + transfer functions for :func:`run_forward`.

    The default state shape is a ``dict`` environment; subclasses may use
    anything as long as ``join``/``equals``/``transfer`` agree on it.
    """

    def initial(self, cfg: CFG) -> object:
        """Entry state (conventionally an empty environment)."""
        return {}

    def join(self, left: object, right: object) -> object:
        raise NotImplementedError

    def widen(self, previous: object, incoming: object) -> object:
        """Accelerated join for loop convergence; defaults to join."""
        return self.join(previous, incoming)

    def equals(self, left: object, right: object) -> bool:
        return left == right

    def transfer(self, state: object, node: ast.AST) -> object:
        """State after one simple statement; must not mutate ``state``."""
        return state

    def transfer_loop(self, state: object, node: ast.For) -> object:
        """State after binding a for-loop target on the ``true`` edge."""
        return state

    def refine(self, state: object, test: ast.expr, branch: bool) -> object:
        """State entering the ``true``/``false`` edge of a branch."""
        return state

    def exceptional(self, entry: object, exit_state: object, block) -> object:
        """State carried along an ``"except"`` edge out of ``block``.

        The raise may have interrupted the block anywhere between its
        entry and its exit, so the sound handler state lies between the
        two.  The default keeps the historical coarse choice — the block
        output — which over-approximates facts *established* in the
        block; analyses tracking facts that a mid-block raise can undo
        (the typestate rules: a binding that may not have happened yet)
        override this to fold ``entry`` back in.
        """
        return exit_state


def block_output(analysis: ForwardAnalysis, state: object, block) -> object:
    """Push a block input state through every statement of the block."""
    for node in block.statements:
        state = analysis.transfer(state, node)
    return state


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> list[object]:
    """Input state of every block at the fixpoint (None = unreachable)."""
    count = len(cfg.blocks)
    in_states: list[object] = [None] * count
    in_states[cfg.entry] = analysis.initial(cfg)
    changes = [0] * count
    visits = [0] * count
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    while work:
        index = work.popleft()
        queued.discard(index)
        state = in_states[index]
        if state is None:
            continue
        visits[index] += 1
        if visits[index] > _MAX_SWEEPS:
            continue
        block = cfg.blocks[index]
        out = block_output(analysis, state, block)
        for target, label in block.successors:
            edge_state = out
            if block.test is not None and label in ("true", "false"):
                edge_state = analysis.refine(out, block.test, label == "true")
            if block.loop is not None and label == "true":
                edge_state = analysis.transfer_loop(out, block.loop)
            if label == "except":
                edge_state = analysis.exceptional(state, out, block)
            existing = in_states[target]
            if existing is None:
                merged = edge_state
            elif changes[target] >= WIDEN_AFTER:
                merged = analysis.widen(existing, edge_state)
            else:
                merged = analysis.join(existing, edge_state)
            if existing is None or not analysis.equals(merged, existing):
                in_states[target] = merged
                changes[target] += 1
                if target not in queued:
                    work.append(target)
                    queued.add(target)
    return in_states


def statement_states(
    cfg: CFG, in_states: list[object], analysis: ForwardAnalysis
) -> Iterator[tuple[ast.AST, object]]:
    """(node, state-before-node) for every reachable statement site.

    Loop heads yield their ``ast.For`` node (state before the target
    binding) and branch blocks yield their test expression, so rules can
    inspect every expression the function evaluates exactly once, each
    under the state that actually reaches it.
    """
    for block in cfg.blocks:
        state = in_states[block.index]
        if state is None:
            continue
        for node in block.statements:
            yield node, state
            state = analysis.transfer(state, node)
        if block.loop is not None:
            yield block.loop, state
        if block.test is not None:
            yield block.test, state
