"""The typestate (resource-lifecycle) rules: RPR109–RPR111.

The engine manages half a dozen acquire/release protocols by convention:
a published shared-memory segment must be closed *and then* unlinked, a
:class:`WorkerPool` must be closed, ``obs`` spans and ``use_context``
frames must exit as many times as they enter.  Once the engine serves
long-lived processes those conventions stop being self-healing — a
leaked segment no longer dies with the interpreter — so this module
checks them statically on PR 6's CFG/dataflow layer:

========  ============================================================
RPR109    leak-on-path — some path (exception edges, early returns,
          loop-carried rebinding, a discarded acquisition) reaches
          function exit with an owned resource still allocated and
          unescaped; undeclared ownership transfer (returning or
          storing an owned resource without ``Owns:``) reports here too
RPR110    use-after-release — attribute access or re-dispatch on a
          resource that is released on *every* path reaching the site
RPR111    release-protocol violation — a release step applied twice,
          out of order (``unlink`` before ``close``), or to a
          parameter the contract says is only borrowed
========  ============================================================

Each resource follows a declarative :class:`Protocol` from
:data:`PROTOCOLS` — an ordered tuple of release steps.  The abstract
domain maps local names to a :class:`Resource` whose ``states`` set
holds every step index reachable on some path (``-1`` = escaped to a
new owner); uniform singleton sets are *must* facts (RPR110/111 fire
only on those), any live member is a *may* fact (RPR109 fires on
those).  Ownership transfer is declared, not guessed, with the
``Owns:``/``Borrows:`` docstring grammar of
:mod:`repro.analysis.contracts`; one-level interprocedural summaries
(in the style of RPR107) propagate the release steps a callee applies
to the arguments it is handed.

The runtime mirror of RPR109 is the ``live_resources`` probe installed
by ``--sanitize`` (zero live ``repro_shm_*`` segments and a balanced
context stack at exit); the state machines and grammar are documented
in DESIGN.md ("Typestate layer").
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, replace

from .cfg import CFG
from .cfg import shallow_exprs
from .contracts import Contract, parse_contract
from .dataflow import ForwardAnalysis, run_forward
from .dataflow_rules import (
    _cfg_of,
    _free_names,
    _param_names,
    _root_name,
    _target_names,
)
from .engine import Finding, Module, ProjectRule
from .project import FunctionDef, Project
from .project_rules import _project_for

ESCAPED = -1
"""Pseudo-state: ownership moved to another owner on this path."""


@dataclass(frozen=True)
class Protocol:
    """One resource kind's state machine: ordered release steps."""

    name: str
    steps: tuple[str, ...]
    """Release method names in required order; ``"()"`` means the
    resource itself is called to release it (cleanup callables)."""
    description: str


#: The declarative protocol registry (DESIGN.md "Typestate layer").
PROTOCOLS: dict[str, Protocol] = {
    "shm-segment": Protocol(
        "shm-segment",
        ("close", "unlink"),
        "shared-memory segment: close the mapping, then unlink the name",
    ),
    "mmap-matrix": Protocol(
        "mmap-matrix",
        ("close", "unlink"),
        "mmap-backed encoded-matrix file: close the write handle, then "
        "unlink the temp file",
    ),
    "worker-pool": Protocol(
        "worker-pool",
        ("close",),
        "engine WorkerPool: close() shuts the executor down and unlinks "
        "published segments",
    ),
    "executor": Protocol(
        "executor", ("shutdown",), "concurrent.futures executor"
    ),
    "file": Protocol(
        "file",
        ("close",),
        "open()/Path.open()/NamedTemporaryFile handle",
    ),
    "tempdir": Protocol(
        "tempdir", ("cleanup",), "tempfile.TemporaryDirectory"
    ),
    "frame": Protocol(
        "frame",
        ("__exit__",),
        "obs span/recording and use_context stack frames: enter/exit "
        "via `with`",
    ),
    "cleanup": Protocol(
        "cleanup",
        ("()",),
        "release callable from an `Owns: return via call` publisher",
    ),
    "resource": Protocol(
        "resource",
        ("close",),
        "generic owned resource (plain `Owns: return`)",
    ),
}

#: Constructor names that acquire a resource unconditionally.
_CONSTRUCTOR_PROTOCOLS = {
    "MmapSegment": "mmap-matrix",
    "WorkerPool": "worker-pool",
    "ThreadPoolExecutor": "executor",
    "ProcessPoolExecutor": "executor",
    "NamedTemporaryFile": "file",
    "TemporaryFile": "file",
    "TemporaryDirectory": "tempdir",
    "span": "frame",
    "recording": "frame",
    "use_context": "frame",
}

#: Every release-step name of any protocol; releasing a `Borrows:`
#: parameter through one of these is an RPR111 finding.
_ALL_STEP_NAMES = frozenset(
    step
    for protocol in PROTOCOLS.values()
    for step in protocol.steps
    if step != "()"
)

_NO_CONTRACT = Contract()


def acquired_protocol(call: ast.Call) -> str | None:
    """The protocol a call acquires, or None for ordinary calls."""
    func = call.func
    if isinstance(func, ast.Name):
        name, root = func.id, None
    elif isinstance(func, ast.Attribute):
        name, root = func.attr, _root_name(func.value)
    else:
        return None
    if name == "SharedMemory":
        for keyword in call.keywords:
            if (
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return "shm-segment"
        return None  # attach-only: the creator owns the segment
    if name == "open":
        # os.open returns a raw fd managed elsewhere (dup2 piping etc.)
        return None if root == "os" else "file"
    return _CONSTRUCTOR_PROTOCOLS.get(name)


@dataclass(frozen=True)
class Resource:
    """Abstract state of one tracked resource binding."""

    protocol: str
    line: int
    """Acquisition line (the leak message anchor)."""
    states: frozenset[int]
    """Reachable release-step indices; ``len(steps)`` = fully released,
    :data:`ESCAPED` = ownership transferred on that path."""
    maybe_unbound: bool = False
    """True when the name is unbound on some path (must-checks off)."""
    borrowed: bool = False
    """A ``Borrows:`` parameter: this function must not release it."""
    poisoned: bool = False
    """A violation was already reported; silence the cascade."""

    @property
    def full(self) -> int:
        return len(PROTOCOLS[self.protocol].steps)

    @property
    def may_live(self) -> bool:
        """Some path still holds the resource short of fully released."""
        return any(0 <= state < self.full for state in self.states)

    @property
    def is_must(self) -> bool:
        """The state set is a single definite fact on every path."""
        return len(self.states) == 1 and not self.maybe_unbound


def _escaped(resource: Resource) -> Resource:
    return replace(resource, states=frozenset({ESCAPED}))


def _stmt_calls(node: ast.AST) -> list[ast.Call]:
    """Every call a block statement evaluates, in source order."""
    calls = [
        child
        for expr in shallow_exprs(node)
        for child in ast.walk(expr)
        if isinstance(child, ast.Call)
    ]
    calls.sort(key=lambda call: (call.lineno, call.col_offset))
    return calls


def _returned_names(value: ast.expr) -> list[str]:
    if isinstance(value, ast.Name):
        return [value.id]
    if isinstance(value, ast.Tuple):
        return [elt.id for elt in value.elts if isinstance(elt, ast.Name)]
    return []


def _none_test(test: ast.expr) -> tuple[str, bool] | None:
    """``(name, is_none)`` for an ``x is None`` / ``x is not None`` test."""
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and len(test.ops) == 1
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return test.left.id, True
        if isinstance(test.ops[0], ast.IsNot):
            return test.left.id, False
    return None


def _contract_of(function: FunctionDef | None) -> Contract:
    if function is None:
        return _NO_CONTRACT
    parsed = parse_contract(ast.get_docstring(function.node, clean=False))
    if parsed is None or parsed.errors:
        return _NO_CONTRACT
    return parsed


def _lifecycle_summaries(
    project: Project, shared: dict
) -> dict[tuple[str, str], dict[str, tuple[str, ...]]]:
    """Per function: the release steps its body applies to each parameter.

    One-level and flow-insensitive by design (the RPR107 pattern): a
    helper like ``_discard_segment(segment)`` is summarized as applying
    ``("close", "unlink")`` to ``segment``, so callers see the handoff
    release its resource instead of conservatively escaping it.
    """
    cached = shared.get("lifecycle_summaries")
    if cached is not None:
        return cached
    summaries: dict[tuple[str, str], dict[str, tuple[str, ...]]] = {}
    for function in project.all_functions():
        params = _param_names(function.node.args)
        applied: dict[str, list[str]] = {}
        calls = [
            node
            for node in ast.walk(function.node)
            if isinstance(node, ast.Call)
        ]
        calls.sort(key=lambda call: (call.lineno, call.col_offset))
        for node in calls:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in params
                and func.attr in _ALL_STEP_NAMES
            ):
                applied.setdefault(func.value.id, []).append(func.attr)
            elif isinstance(func, ast.Name) and func.id in params:
                applied.setdefault(func.id, []).append("()")
        summaries[function.key] = {
            name: tuple(steps) for name, steps in applied.items()
        }
    shared["lifecycle_summaries"] = summaries
    return summaries


@dataclass(frozen=True)
class _StepApplication:
    """One release-step application site found in a statement."""

    name: str
    step: int
    step_name: str
    line: int
    col: int
    via_summary: str | None = None
    """Callee name when the step is applied through a summarized call."""


class _LifecycleAnalysis(ForwardAnalysis):
    """Forward environment: local name -> :class:`Resource`."""

    def __init__(
        self,
        module: Module,
        function: FunctionDef,
        project: Project,
        summaries: dict[tuple[str, str], dict[str, tuple[str, ...]]],
    ) -> None:
        self.module = module
        self.function = function
        self.project = project
        self.summaries = summaries
        self.contract = _contract_of(function)

    # -- domain -----------------------------------------------------------

    def initial(self, cfg: CFG) -> dict:
        env: dict[str, Resource] = {}
        params = _param_names(self.function.node.args)
        line = self.function.node.lineno
        for name, protocol in self.contract.owns_params:
            if name in params:
                env[name] = Resource(
                    protocol=protocol if protocol in PROTOCOLS else "resource",
                    line=line,
                    states=frozenset({0}),
                )
        for name in self.contract.borrows:
            if name in params and name not in env:
                env[name] = Resource(
                    protocol="resource",
                    line=line,
                    states=frozenset({0}),
                    borrowed=True,
                )
        return env

    def join(self, left: dict, right: dict) -> dict:
        merged: dict[str, Resource] = {}
        for name in left.keys() | right.keys():
            first, second = left.get(name), right.get(name)
            if first is None or second is None:
                present = first if first is not None else second
                merged[name] = replace(present, maybe_unbound=True)
            else:
                merged[name] = replace(
                    first,
                    states=first.states | second.states,
                    maybe_unbound=first.maybe_unbound or second.maybe_unbound,
                    poisoned=first.poisoned or second.poisoned,
                )
        return merged

    def exceptional(self, entry: dict, exit_state: dict, block) -> dict:
        """Handler state: a raise may predate any binding the block made.

        A resource acquired *inside* the raising block may not exist on
        the exception path (the acquisition itself raised), so it is
        dropped.  A release step that raised still counts as applied —
        the engine's own protocols never retry ``close()`` after
        ``BufferError``, and claiming the step "may not have run" would
        turn every guarded release into a phantom leak.  An *escape* the
        block performed (``return segment``) is NOT committed, though:
        the raise preempted it, so the entry states fold back in and the
        handler still owes the release.  (A block that both acquires and
        then raises past the acquisition is coarsely treated as not
        having acquired; the triad fixtures and the engine keep
        acquisitions in their own ``try``.)
        """
        lines = [
            (node.lineno, getattr(node, "end_lineno", None) or node.lineno)
            for node in block.statements
            if hasattr(node, "lineno")
        ]
        if not lines:
            return exit_state
        low = min(start for start, _ in lines)
        high = max(end for _, end in lines)
        env: dict[str, Resource] = {}
        for name, resource in exit_state.items():
            before = entry.get(name)
            if before is None:
                if low <= resource.line <= high:
                    continue
            elif ESCAPED in resource.states and ESCAPED not in before.states:
                resource = replace(
                    resource, states=resource.states | before.states
                )
            env[name] = resource
        return env

    def refine(self, state: dict, test: ast.expr, branch: bool) -> dict:
        parsed = _none_test(test)
        if parsed is None:
            return state
        name, is_none = parsed
        if name not in state:
            return state
        env = dict(state)
        if is_none == branch:
            # on this edge the name is None — not a live resource
            del env[name]
        else:
            # provably bound here: must-facts become available
            env[name] = replace(env[name], maybe_unbound=False)
        return env

    # -- transfer ---------------------------------------------------------

    def transfer(self, state: dict, node: ast.AST) -> dict:
        env = dict(state)
        if isinstance(node, ast.withitem):
            self._transfer_withitem(env, node)
            return env
        for application in self.step_applications(env, node):
            self._fold_step(env, application)
        self._escape_via_calls(env, node)
        self._escape_closures(env, node)
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._transfer_assign(env, node)
        elif isinstance(node, ast.Return) and node.value is not None:
            for name in _returned_names(node.value):
                resource = env.get(name)
                if resource is not None and not resource.borrowed:
                    env[name] = _escaped(resource)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return env

    def transfer_loop(self, state: dict, node: ast.For) -> dict:
        env = dict(state)
        for name in _target_names(node.target):
            env.pop(name, None)
        return env

    def _transfer_withitem(self, env: dict, item: ast.withitem) -> None:
        """``with`` owns its context expression: entry/exit are paired by
        construction, so acquisitions here are never tracked and tracked
        resources entering a ``with`` are released by it."""
        expr = item.context_expr
        if isinstance(expr, ast.Name) and expr.id in env:
            if not env[expr.id].borrowed:
                env[expr.id] = _escaped(env[expr.id])
            return
        if isinstance(expr, ast.Call):
            if acquired_protocol(expr) is None:
                self._escape_via_calls(env, item)

    def _transfer_assign(
        self, env: dict, node: ast.Assign | ast.AnnAssign
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        # container / attribute stores escape the stored resource: some
        # longer-lived owner (a registry dict, self) holds it now
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                if isinstance(value, ast.Name) and value.id in env:
                    if not env[value.id].borrowed:
                        env[value.id] = _escaped(env[value.id])
        # plain rebinding kills the old binding (leak checked in replay)
        for target in targets:
            for name in _target_names(target):
                env.pop(name, None)
        if value is None or len(targets) != 1:
            return
        target = targets[0]
        if isinstance(value, ast.Call):
            protocol = acquired_protocol(value)
            if protocol is not None and isinstance(target, ast.Name):
                env[target.id] = Resource(
                    protocol=protocol,
                    line=value.lineno,
                    states=frozenset({0}),
                )
                return
            callee = self.resolve_callee(value)
            owned = _contract_of(callee).owns_return
            if owned == "call" and isinstance(target, ast.Tuple):
                names = [
                    elt.id
                    for elt in target.elts
                    if isinstance(elt, ast.Name)
                ]
                if names:
                    # (handle, cleanup) convention: the last unpack
                    # target is the release callable
                    env[names[-1]] = Resource(
                        protocol="cleanup",
                        line=value.lineno,
                        states=frozenset({0}),
                    )
            elif owned == "plain" and isinstance(target, ast.Name):
                env[target.id] = Resource(
                    protocol="resource",
                    line=value.lineno,
                    states=frozenset({0}),
                )
        elif isinstance(value, ast.Name) and value.id in env:
            if isinstance(target, ast.Name):
                # move semantics: the new name owns, the old aliases
                env[target.id] = env[value.id]
                if not env[value.id].borrowed:
                    env[value.id] = _escaped(env[value.id])

    # -- step application -------------------------------------------------

    def step_applications(
        self, env: dict, node: ast.AST
    ) -> list[_StepApplication]:
        """Release-step sites in one statement: direct ``x.close()`` /
        ``cleanup()`` calls plus steps applied through summarized
        callees (``_discard_segment(segment)``)."""
        found: list[_StepApplication] = []
        for call in _stmt_calls(node):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in env
            ):
                resource = env[func.value.id]
                steps = PROTOCOLS[resource.protocol].steps
                if func.attr in steps:
                    found.append(
                        _StepApplication(
                            name=func.value.id,
                            step=steps.index(func.attr),
                            step_name=func.attr,
                            line=call.lineno,
                            col=call.col_offset,
                        )
                    )
                continue
            if isinstance(func, ast.Name) and func.id in env:
                resource = env[func.id]
                steps = PROTOCOLS[resource.protocol].steps
                if "()" in steps:
                    found.append(
                        _StepApplication(
                            name=func.id,
                            step=steps.index("()"),
                            step_name="calling it",
                            line=call.lineno,
                            col=call.col_offset,
                        )
                    )
                continue
            for argument, parameter, callee in self._bound_arguments(call):
                if not (
                    isinstance(argument, ast.Name) and argument.id in env
                ):
                    continue
                resource = env[argument.id]
                if resource.borrowed:
                    continue
                summary = self.summaries.get(callee.key, {})
                steps = PROTOCOLS[resource.protocol].steps
                for step_name in summary.get(parameter, ()):
                    if step_name in steps:
                        found.append(
                            _StepApplication(
                                name=argument.id,
                                step=steps.index(step_name),
                                step_name=step_name,
                                line=call.lineno,
                                col=call.col_offset,
                                via_summary=callee.qualname,
                            )
                        )
        return found

    def _fold_step(self, env: dict, application: _StepApplication) -> None:
        resource = env.get(application.name)
        if resource is None or resource.borrowed:
            return
        if application.step in resource.states:
            env[application.name] = replace(
                resource,
                states=frozenset(
                    state + 1 if state == application.step else state
                    for state in resource.states
                ),
            )
        elif ESCAPED in resource.states:
            pass  # another owner's resource: no protocol claim here
        else:
            # illegal on every path: the replay reports it once, then
            # the saturated/poisoned state silences the cascade
            env[application.name] = replace(
                resource,
                states=frozenset({resource.full}),
                poisoned=True,
            )

    # -- escapes ----------------------------------------------------------

    def _escape_via_calls(self, env: dict, node: ast.AST) -> None:
        """A tracked resource passed to a call escapes unless the callee
        is summarized in-tree or declares ``Borrows:`` on the slot."""
        for call in _stmt_calls(node):
            func = call.func
            receiver = (
                func.value.id
                if isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                else None
            )
            callee = self.resolve_callee(call)
            contract = _contract_of(callee)
            bound = dict()
            if callee is not None:
                bound = {
                    id(argument): parameter
                    for argument, parameter, _ in self._bound_arguments(call)
                }
            for argument in [*call.args, *[k.value for k in call.keywords]]:
                if not (
                    isinstance(argument, ast.Name) and argument.id in env
                ):
                    continue
                if argument.id == receiver:
                    continue
                resource = env[argument.id]
                if resource.borrowed or ESCAPED in resource.states:
                    continue
                if callee is not None:
                    parameter = bound.get(id(argument))
                    if parameter in contract.borrows:
                        continue
                    owned = {name for name, _ in contract.owns_params}
                    if parameter in owned:
                        env[argument.id] = _escaped(env[argument.id])
                        continue
                    # in-tree callee without an ownership claim: keep
                    # tracking (its summary already applied its steps)
                    continue
                env[argument.id] = _escaped(resource)

    def _escape_closures(self, env: dict, node: ast.AST) -> None:
        """Free names of a nested def/lambda escape: the closure is the
        new owner (the ``cleanup`` callable pattern)."""
        closures: list[ast.AST] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            closures.append(node)
        for expr in shallow_exprs(node):
            closures.extend(
                child
                for child in ast.walk(expr)
                if isinstance(child, ast.Lambda)
            )
        for closure in closures:
            for name in _free_names(closure):
                resource = env.get(name)
                if resource is not None and not resource.borrowed:
                    env[name] = _escaped(resource)

    # -- callee resolution -------------------------------------------------

    def resolve_callee(self, call: ast.Call) -> FunctionDef | None:
        func = call.func
        table = self.project.symbols().get(self.function.module)
        if table is None:
            return None
        if isinstance(func, ast.Name):
            local = table.functions.get(func.id)
            if local is not None:
                return local
            imported = table.imported_functions.get(func.id)
            if imported is not None:
                target_module, original = imported
                target_table = self.project.symbols().get(target_module)
                if target_table is not None:
                    return target_table.functions.get(original)
            return None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.function.class_name is not None
        ):
            methods = table.classes.get(self.function.class_name, {})
            return methods.get(func.attr)
        return None

    def _bound_arguments(
        self, call: ast.Call
    ) -> list[tuple[ast.expr, str, FunctionDef]]:
        """(argument expression, callee parameter name, callee) triples."""
        callee = self.resolve_callee(call)
        if callee is None:
            return []
        parameters = [
            arg.arg
            for arg in (
                *callee.node.args.posonlyargs,
                *callee.node.args.args,
            )
        ]
        offset = 0
        if callee.is_method and isinstance(call.func, ast.Attribute):
            offset = 1  # `self` is bound by the attribute access
        bound: list[tuple[ast.expr, str, FunctionDef]] = []
        for index, argument in enumerate(call.args):
            slot = index + offset
            if slot < len(parameters):
                bound.append((argument, parameters[slot], callee))
        names = set(parameters) | {
            arg.arg for arg in callee.node.args.kwonlyargs
        }
        for keyword in call.keywords:
            if keyword.arg in names:
                bound.append((keyword.value, keyword.arg, callee))
        return bound


# ---------------------------------------------------------------------------
# the replay: walking the fixpoint and emitting findings
# ---------------------------------------------------------------------------


def _remaining_steps(resource: Resource) -> str:
    steps = PROTOCOLS[resource.protocol].steps
    minimum = min(
        (state for state in resource.states if 0 <= state < resource.full),
        default=0,
    )
    pending = [step if step != "()" else "call it" for step in steps[minimum:]]
    return " -> ".join(pending)


def _check_function(
    module: Module,
    function: FunctionDef,
    project: Project,
    summaries: dict,
    shared: dict,
    sink: dict[str, list[Finding]],
) -> None:
    analysis = _LifecycleAnalysis(module, function, project, summaries)
    cfg = _cfg_of(shared, function)
    states = run_forward(cfg, analysis)
    contract = analysis.contract
    leaked: set[int] = set()
    reported_uses: set[tuple[str, int]] = set()
    emitted: set[tuple[str, int, int, str]] = set()

    def emit(code: str, line: int, col: int, message: str) -> None:
        # finally bodies are lowered twice (abort + normal copies), so
        # the same statement can replay in two blocks — dedupe by site
        key = (code, line, col, message)
        if key in emitted:
            return
        emitted.add(key)
        sink[code].append(
            Finding(
                path=module.relpath,
                line=line,
                col=col + 1,
                rule=code,
                message=f"{function.qualname}: {message}",
            )
        )

    def leak(resource: Resource, line: int, col: int, message: str) -> None:
        if resource.line in leaked:
            return
        leaked.add(resource.line)
        emit("RPR109", line, col, message)

    for block in cfg.blocks:
        state = states[block.index]
        if state is None:
            continue
        for node in block.statements:
            _check_statement(
                analysis, contract, state, node, block.protected, emit, leak,
                reported_uses,
            )
            state = analysis.transfer(state, node)
        if block.loop is not None:
            for name in _target_names(block.loop.target):
                resource = state.get(name)
                if (
                    resource is not None
                    and not resource.borrowed
                    and resource.may_live
                ):
                    leak(
                        resource,
                        block.loop.lineno,
                        block.loop.col_offset,
                        f"loop target {name!r} rebinds a "
                        f"{resource.protocol} acquired at line "
                        f"{resource.line} while a path still holds it "
                        f"unreleased ({_remaining_steps(resource)} first)",
                    )

    exit_state = states[cfg.exit]
    if exit_state:
        for name in sorted(exit_state, key=lambda n: exit_state[n].line):
            resource = exit_state[name]
            if (
                resource.borrowed
                or resource.poisoned
                or not resource.may_live
                or resource.line in leaked
            ):
                continue
            leaked.add(resource.line)
            emit(
                "RPR109",
                resource.line,
                0,
                f"{resource.protocol} {name!r} acquired here can reach "
                f"function exit unreleased on some path; release it "
                f"({_remaining_steps(resource)}) on every path, or "
                "transfer ownership and declare it with `Owns:`",
            )


def _check_statement(
    analysis: _LifecycleAnalysis,
    contract: Contract,
    state: dict,
    node: ast.AST,
    protected: bool,
    emit,
    leak,
    reported_uses: set[tuple[str, int]],
) -> None:
    env = dict(state)
    # RPR111: illegal step applications (must-facts only), folding
    # sequentially so `x.close(); x.close()` on one line still reports
    for application in analysis.step_applications(env, node):
        resource = env.get(application.name)
        if resource is not None and not resource.borrowed:
            if (
                application.step not in resource.states
                and ESCAPED not in resource.states
                and resource.is_must
                and not resource.poisoned
            ):
                steps = PROTOCOLS[resource.protocol].steps
                via = (
                    f" (via {application.via_summary})"
                    if application.via_summary
                    else ""
                )
                if min(resource.states) > application.step:
                    emit(
                        "RPR111",
                        application.line,
                        application.col,
                        f"{resource.protocol} {application.name!r} is "
                        f"already past {application.step_name!r}{via}: "
                        "double release",
                    )
                else:
                    expected = steps[min(resource.states)]
                    expected = "calling it" if expected == "()" else repr(expected)
                    emit(
                        "RPR111",
                        application.line,
                        application.col,
                        f"{resource.protocol} {application.name!r}: "
                        f"{application.step_name!r} applied before "
                        f"{expected}{via} — release steps are ordered "
                        f"({_remaining_steps(resource)})",
                    )
        analysis._fold_step(env, application)
    # RPR111: releasing a borrowed parameter
    for call in _stmt_calls(node):
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.attr in _ALL_STEP_NAMES
        ):
            resource = state.get(func.value.id)
            if resource is not None and resource.borrowed:
                emit(
                    "RPR111",
                    call.lineno,
                    call.col_offset,
                    f"parameter {func.value.id!r} is declared "
                    f"`Borrows:` but {func.attr!r} releases it — the "
                    "caller keeps ownership; drop the call or declare "
                    f"`Owns: {func.value.id} via <protocol>`",
                )
    # RPR110: attribute access / re-dispatch on a must-released resource
    if not isinstance(node, ast.withitem):
        for expr in shallow_exprs(node):
            for attribute in ast.walk(expr):
                if not (
                    isinstance(attribute, ast.Attribute)
                    and isinstance(attribute.value, ast.Name)
                ):
                    continue
                resource = state.get(attribute.value.id)
                if (
                    resource is None
                    or resource.borrowed
                    or resource.poisoned
                    or not resource.is_must
                    or resource.states != frozenset({resource.full})
                ):
                    continue
                if attribute.attr in PROTOCOLS[resource.protocol].steps:
                    continue  # double release is RPR111's finding
                key = (attribute.value.id, attribute.lineno)
                if key in reported_uses:
                    continue
                reported_uses.add(key)
                emit(
                    "RPR110",
                    attribute.lineno,
                    attribute.col_offset,
                    f"{resource.protocol} {attribute.value.id!r} is "
                    f"released on every path reaching this use of "
                    f".{attribute.attr}; re-acquire it or move the use "
                    "before the release",
                )
    # RPR109 shapes that need the statement, not just the exit state
    if (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Call)
        and acquired_protocol(node.value) is not None
    ):
        protocol = acquired_protocol(node.value)
        emit(
            "RPR109",
            node.value.lineno,
            node.value.col_offset,
            f"{protocol} acquired and immediately discarded — bind it "
            "and release it, or use a `with` block",
        )
        return
    if isinstance(node, ast.Return) and node.value is not None:
        for name in _returned_names(node.value):
            resource = state.get(name)
            if (
                resource is not None
                and not resource.borrowed
                and resource.may_live
                and contract.owns_return is None
            ):
                leak(
                    resource,
                    node.lineno,
                    node.col_offset,
                    f"returns the live {resource.protocol} {name!r} "
                    "without declaring `Owns: return` — ownership "
                    "transfer must be declared, not guessed",
                )
        if (
            isinstance(node.value, ast.Call)
            and acquired_protocol(node.value) is not None
            and contract.owns_return is None
        ):
            emit(
                "RPR109",
                node.lineno,
                node.col_offset,
                f"returns a fresh {acquired_protocol(node.value)} "
                "without declaring `Owns: return` — the caller cannot "
                "know it must release this",
            )
        # other live resources at an early return are caught by the
        # exit-state check (the return edge flows there)
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        stores_self = any(
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            for target in targets
        )
        if stores_self and not contract.owns_self and value is not None:
            acquired = (
                isinstance(value, ast.Call)
                and acquired_protocol(value) is not None
            )
            moved = (
                isinstance(value, ast.Name)
                and value.id in state
                and state[value.id].may_live
                and not state[value.id].borrowed
            )
            if acquired or moved:
                emit(
                    "RPR109",
                    node.lineno,
                    node.col_offset,
                    "stores an owned resource on `self` without "
                    "declaring `Owns: self` — ownership transfer must "
                    "be declared, not guessed",
                )
        for target in targets:
            for name in _target_names(target):
                resource = state.get(name)
                if (
                    resource is not None
                    and not resource.borrowed
                    and resource.may_live
                ):
                    # a pre-state holding a binding made *at this line*
                    # is the loop-carried case: the back edge brought
                    # last iteration's still-live resource here
                    leak(
                        resource,
                        node.lineno,
                        node.col_offset,
                        f"rebinds {name!r} while a path still holds the "
                        f"{resource.protocol} acquired at line "
                        f"{resource.line} unreleased "
                        f"({_remaining_steps(resource)} first)",
                    )
    # RPR109: a call that may raise while an owned resource is live and
    # no handler/finally protects it (the exception-edge leak)
    if not protected:
        live = [
            (name, resource)
            for name, resource in state.items()
            if not resource.borrowed
            and not resource.poisoned
            and resource.may_live
        ]
        if live:
            release_sites = {
                (application.line, application.col)
                for application in analysis.step_applications(
                    dict(state), node
                )
            }
            for call in _stmt_calls(node):
                if (call.lineno, call.col_offset) in release_sites:
                    continue  # the release itself is not a leak risk
                func = call.func
                receiver = (
                    _root_name(func.value)
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else None
                )
                if receiver in state:
                    continue  # releases/uses of tracked resources
                if acquired_protocol(call) is not None:
                    continue  # the acquisition itself
                name, resource = min(live, key=lambda item: item[1].line)
                leak(
                    resource,
                    call.lineno,
                    call.col_offset,
                    f"this call can raise while the {resource.protocol} "
                    f"{name!r} (acquired line {resource.line}) is "
                    "unreleased and no try/finally protects it — an "
                    "exception here leaks the resource",
                )
                break


# ---------------------------------------------------------------------------
# the rules
# ---------------------------------------------------------------------------


def _lifecycle_findings(
    modules: Sequence[Module], shared: dict
) -> dict[str, list[Finding]]:
    cached = shared.get("lifecycle_findings")
    if cached is not None:
        return cached
    project = _project_for(modules, shared)
    summaries = _lifecycle_summaries(project, shared)
    sink: dict[str, list[Finding]] = {
        "RPR109": [],
        "RPR110": [],
        "RPR111": [],
    }
    for function in project.all_functions():
        module = project.by_relpath[function.module]
        _check_function(module, function, project, summaries, shared, sink)
    shared["lifecycle_findings"] = sink
    return sink


class _LifecycleRule(ProjectRule):
    """Shared driver: one typestate pass serves all three rules."""

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        yield from _lifecycle_findings(modules, shared)[self.code]


class ResourceLeakRule(_LifecycleRule):
    code = "RPR109"
    name = "resource-leak-on-path"
    rationale = (
        "an owned resource (shm segment, WorkerPool, executor, file, "
        "span/context frame, cleanup callable) must be released or have "
        "its ownership transfer declared (`Owns:`/`Borrows:`) on every "
        "path — including exception edges, early returns, and "
        "loop-carried rebinding; a long-lived serving process never "
        "gets the interpreter-exit amnesty"
    )
    example = (
        "    segment = SharedMemory(create=True, size=n)\n"
        "    view = np.ndarray(shape, dtype, buffer=segment.buf)  # RPR109\n"
        "    view[:] = matrix   # a raise above leaks the segment\n"
        "fix: wrap the fill in try/except that closes+unlinks and\n"
        "re-raises, or hand the segment to a declared `Owns:` sink"
    )


class UseAfterReleaseRule(_LifecycleRule):
    code = "RPR110"
    name = "use-after-release"
    rationale = (
        "attribute access or re-dispatch on a resource that every path "
        "has already fully released (closed pool, unlinked segment, "
        "called cleanup) raises at best and touches recycled state at "
        "worst; the check fires only on must-released facts, never on "
        "may-paths"
    )
    example = (
        "    pool.close()\n"
        "    pool.map_chunks(task, chunks)   # RPR110\n"
        "fix: dispatch before closing, or re-acquire via get_pool()"
    )


class ReleaseProtocolRule(_LifecycleRule):
    code = "RPR111"
    name = "release-protocol-violation"
    rationale = (
        "release steps are ordered state machines: a shm segment is "
        "close-then-unlink, never unlink-first and never twice; a "
        "`Borrows:` parameter must not be released at all — the caller "
        "still owns it"
    )
    example = (
        "    segment.unlink()   # RPR111: unlink before close\n"
        "    segment.close()\n"
        "fix: apply the protocol's steps in order (close -> unlink)"
    )


def default_lifecycle_rules() -> list[ProjectRule]:
    """Fresh instances of the typestate rules, in code order."""
    return [ResourceLeakRule(), UseAfterReleaseRule(), ReleaseProtocolRule()]
