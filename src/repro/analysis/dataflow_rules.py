"""The flow-sensitive whole-program rules: RPR106–RPR108.

These are the first rules built on the CFG/dataflow layer
(:mod:`repro.analysis.cfg`, :mod:`repro.analysis.dataflow`) rather than
single AST walks — each tracks an abstract property through assignments
and branches before judging a call site:

========  ============================================================
RPR106    parallel-state escape — a task function handed to the worker
          pool (``pool.map_chunks``/``run_cells_sharded``) must not
          capture mutable coordinator state (dict/list/set, Recorder,
          PartitionStore, ``self``): process workers mutate a pickled
          copy and silently diverge from thread workers
RPR107    merge-order sensitivity — values whose provenance includes
          unordered iteration (``set``/``frozenset``, ``os.listdir``,
          ``glob``) may not reach ``DiscoveryResult``/``make_result``
          or the return value of a sharded/merge kernel without a
          canonicalizing ``sorted()`` (the static form of the parallel
          engine's first-occurrence-order merge invariant); justified
          sites carry ``# pragma: repro-lint ordered``
RPR108    numeric-width overflow — an abstract bit-width domain bounds
          every group-key fold (``keys * cardinality + labels``); a
          multiply whose worst case reaches 2^64 without a dominating
          fold-limit guard is the historical silently-wrapping RHS
          fold (fixed in ``relation/validate.fold_labels``)
========  ============================================================

The RPR107 taint and RPR108 width domains are documented in DESIGN.md
§6 ("Dataflow layer").
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, replace

from .cfg import CFG, build_cfg, shallow_exprs
from .dataflow import ForwardAnalysis, run_forward, statement_states
from .engine import Finding, Module, ProjectRule
from .project import FunctionDef, Project
from .project_rules import _project_for

_ORDERED_PRAGMA_RE = re.compile(r"#\s*pragma:\s*repro-lint\s+ordered\b")


def _has_ordered_pragma(module: Module, lineno: int) -> bool:
    if 1 <= lineno <= len(module.lines):
        return bool(_ORDERED_PRAGMA_RE.search(module.lines[lineno - 1]))
    return False


def _root_name(expr: ast.expr) -> str | None:
    """The variable at the root of an attribute/subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        return [name for elt in target.elts for name in _target_names(elt)]
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _cfg_of(shared: dict, function: FunctionDef) -> CFG:
    cache = shared.setdefault("dataflow_cfgs", {})
    cfg = cache.get(function.key)
    if cfg is None:
        cfg = build_cfg(function.node)
        cache[function.key] = cfg
    return cfg


def _iter_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _param_names(args: ast.arguments) -> set[str]:
    names = {arg.arg for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    for variadic in (args.vararg, args.kwarg):
        if variadic is not None:
            names.add(variadic.arg)
    return names


def _local_names(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters plus every name the function's own scope binds."""
    names = _param_names(function.args)
    for node in _iter_scope(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


def _free_names(function: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names a task function reads but does not bind itself (approximate:
    bindings anywhere inside count, so this under- rather than
    over-reports captures)."""
    bound = _param_names(function.args)
    loads: set[str] = set()
    body = function.body if isinstance(function.body, list) else [function.body]
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
                else:
                    bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
                bound.update(_param_names(node.args))
            elif isinstance(node, ast.Lambda):
                bound.update(_param_names(node.args))
    return loads - bound


# ---------------------------------------------------------------------------
# RPR106 — parallel-state escape
# ---------------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
     "OrderedDict", "sorted"}
)
#: project classes that are mutable shared state by design
_MUTABLE_CLASSES = frozenset({"Recorder", "PartitionStore"})
_IMMUTABLE_CONSTRUCTORS = frozenset(
    {"tuple", "frozenset", "int", "float", "str", "bytes", "bool", "range"}
)


class _MutabilityAnalysis(ForwardAnalysis):
    """Environment: name -> ("mutable" | "immutable", defining line).

    Only *definitely* mutable bindings are kept across joins (both
    branches must agree), so the escape rule flags provable captures and
    stays silent on merge ambiguity.
    """

    def join(self, left: dict, right: dict) -> dict:
        out = {}
        for name, (kind, line) in left.items():
            other = right.get(name)
            if other is not None and other[0] == kind:
                out[name] = (kind, min(line, other[1]))
        return out

    def transfer(self, state: dict, node: ast.AST) -> dict:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None:
                return state
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            new = dict(state)
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                kind = self.classify(value, state)
                name = targets[0].id
                if kind is None:
                    new.pop(name, None)
                else:
                    new[name] = (kind, value.lineno)
            else:
                for target in targets:
                    for name in _target_names(target):
                        new.pop(name, None)
            return new
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            new = dict(state)
            new.pop(node.name, None)
            return new
        if isinstance(node, ast.withitem) and node.optional_vars is not None:
            new = dict(state)
            for name in _target_names(node.optional_vars):
                new.pop(name, None)
            return new
        return state

    def transfer_loop(self, state: dict, node: ast.For) -> dict:
        new = dict(state)
        for name in _target_names(node.target):
            new.pop(name, None)
        return new

    def classify(self, expr: ast.expr, env: dict) -> str | None:
        if isinstance(
            expr,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
        ):
            return "mutable"
        if isinstance(expr, ast.Constant):
            return "immutable"
        if isinstance(expr, ast.Tuple):
            kinds = [self.classify(element, env) for element in expr.elts]
            if any(kind == "mutable" for kind in kinds):
                return "mutable"
            if all(kind == "immutable" for kind in kinds):
                return "immutable"
            return None
        if isinstance(expr, ast.Name):
            entry = env.get(expr.id)
            return entry[0] if entry is not None else None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            name = expr.func.id
            if name in _MUTABLE_CONSTRUCTORS or name in _MUTABLE_CLASSES:
                return "mutable"
            if name in _IMMUTABLE_CONSTRUCTORS:
                return "immutable"
        return None


class ParallelStateEscapeRule(ProjectRule):
    """RPR106 — task functions must not close over mutable shared state.

    The worker pool pickles task functions into process workers; a
    captured dict/list/Recorder is then a *private copy* whose mutations
    never return to the coordinator, so ``REPRO_JOBS=process:N`` quietly
    computes something different from ``thread:N`` and serial.  State
    must travel in task payloads and come back in return values, merged
    on the coordinator (the PR-5 discipline).
    """

    code = "RPR106"
    name = "parallel-state-escape"
    rationale = (
        "task functions fanned out through the worker pool must not "
        "capture mutable coordinator state (closures over dict/list/"
        "Recorder/PartitionStore or bound self); process workers mutate "
        "a pickled copy and diverge from thread workers"
    )
    example = (
        "    seen: dict[int, int] = {}\n"
        "    def task(chunk):\n"
        "        seen[chunk[0]] = 1        # mutates a worker-local copy\n"
        "        return chunk\n"
        "    pool.map_chunks(task, tasks)  # RPR106\n"
        "fix: return per-chunk data and merge on the coordinator"
    )

    _ALLOWED_FILES = ("engine/parallel.py", "engine/shm.py")
    #: fan-out entry points -> index of the task-function argument
    _FAN_OUT = {"map_chunks": 0, "run_cells_sharded": 1}

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        project = _project_for(modules, shared)
        analysis = _MutabilityAnalysis()
        for function in project.all_functions():
            module = project.by_relpath[function.module]
            if module.relpath.endswith(self._ALLOWED_FILES):
                continue
            if not self._mentions_fan_out(function.node):
                continue
            yield from self._check_function(function, module, shared, analysis)

    def _mentions_fan_out(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and child.attr in self._FAN_OUT:
                return True
            if isinstance(child, ast.Name) and child.id in self._FAN_OUT:
                return True
        return False

    def _check_function(
        self,
        function: FunctionDef,
        module: Module,
        shared: dict,
        analysis: _MutabilityAnalysis,
    ) -> Iterator[Finding]:
        cfg = _cfg_of(shared, function)
        states = run_forward(cfg, analysis)
        fn_locals = _local_names(function.node)
        nested = {
            node.name: node
            for node in _iter_scope(function.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        is_method = function.is_method
        seen: set[tuple[int, int, str]] = set()
        for node, state in statement_states(cfg, states, analysis):
            for expr in shallow_exprs(node):
                for call in ast.walk(expr):
                    if not isinstance(call, ast.Call):
                        continue
                    found = self._fan_out_task(call)
                    if found is None:
                        continue
                    api, task = found
                    for message in self._escapes(
                        task, state, fn_locals, nested, is_method, api
                    ):
                        key = (call.lineno, call.col_offset, message)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield Finding(
                            path=module.relpath,
                            line=call.lineno,
                            col=call.col_offset + 1,
                            rule=self.code,
                            message=message,
                        )

    def _fan_out_task(self, call: ast.Call) -> tuple[str, ast.expr] | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return None
        index = self._FAN_OUT.get(name)
        if index is None or len(call.args) <= index:
            return None
        # pool.map_chunks(fn, tasks) is a method; run_cells_sharded is a
        # module-level kernel — accept both spellings for each.
        return name, call.args[index]

    def _escapes(
        self,
        task: ast.expr,
        env: dict,
        fn_locals: set[str],
        nested: dict[str, ast.FunctionDef],
        is_method: bool,
        api: str,
    ) -> Iterator[str]:
        if isinstance(task, ast.Lambda):
            yield from self._capture_messages(
                _free_names(task), env, fn_locals, is_method, api, "lambda"
            )
            return
        if isinstance(task, ast.Name):
            definition = nested.get(task.id)
            if definition is not None:
                yield from self._capture_messages(
                    _free_names(definition),
                    env,
                    fn_locals,
                    is_method,
                    api,
                    f"local function {task.id}()",
                )
            return
        if isinstance(task, ast.Attribute):
            root = _root_name(task)
            if root == "self":
                yield (
                    f"bound method self.{task.attr} passed to {api}() "
                    "captures the whole instance; process workers mutate "
                    "a pickled copy — use a module-level task function "
                    "and pass state through the payload"
                )
            elif root is not None and env.get(root, ("", 0))[0] == "mutable":
                line = env[root][1]
                yield (
                    f"bound method {root}.{task.attr} passed to {api}() "
                    f"captures mutable {root!r} (line {line}); workers "
                    "mutate a private copy — pass state through the "
                    "payload and merge on the coordinator"
                )

    def _capture_messages(
        self,
        free: set[str],
        env: dict,
        fn_locals: set[str],
        is_method: bool,
        api: str,
        what: str,
    ) -> Iterator[str]:
        for name in sorted(free & fn_locals):
            if name == "self" and is_method:
                yield (
                    f"{what} passed to {api}() captures `self`; process "
                    "workers mutate a pickled copy of the instance — use "
                    "a module-level task function with explicit payloads"
                )
                continue
            entry = env.get(name)
            if entry is not None and entry[0] == "mutable":
                yield (
                    f"{what} passed to {api}() captures mutable {name!r} "
                    f"(line {entry[1]}); process workers mutate a private "
                    "copy and diverge from thread workers — pass it "
                    "through the task payload and merge on the coordinator"
                )


# ---------------------------------------------------------------------------
# RPR107 — merge-order sensitivity
# ---------------------------------------------------------------------------

#: taint = frozenset of (line, description) origins
_Taint = frozenset

_CLEAN_BUILTINS = frozenset(
    {"len", "min", "max", "sum", "any", "all", "sorted", "range", "zip",
     "abs", "repr", "str", "int", "float", "bool", "print", "isinstance",
     "hasattr", "getattr", "id", "type"}
)
_PASSTHROUGH_BUILTINS = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed", "next", "dict"}
)
#: attribute calls yielding unordered iterables regardless of receiver
_UNORDERED_ATTR_CALLS = {
    "listdir": "os.listdir()",
    "glob": "glob.glob()",
    "iglob": "glob.iglob()",
    "iterdir": ".iterdir()",
    "scandir": "os.scandir()",
}
#: dict views are insertion-ordered in CPython >= 3.7 — deliberately
#: clean; set semantics (and the filesystem calls above) are the hazard.
_ORDERED_ATTR_CALLS = frozenset({"keys", "values", "items"})

_RESULT_SINKS = frozenset({"DiscoveryResult", "make_result"})


def _is_sink_function(function: FunctionDef) -> bool:
    return function.name.endswith("_sharded") or function.name.startswith("merge_")


def _is_set_valued(expr: ast.expr) -> bool:
    """True for expressions that *are* a set — order never materialized."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


class _OrderTaintAnalysis(ForwardAnalysis):
    """Environment: name -> frozenset[(origin line, origin description)].

    A non-empty taint means the value's content or ordering was derived
    from an unordered iteration; ``sorted()`` (or an order-insensitive
    reduction) clears it, and a ``# pragma: repro-lint ordered`` comment
    on the source line suppresses the origin with a reviewable marker.
    """

    def __init__(
        self,
        module: Module,
        function: FunctionDef,
        project: Project,
        summaries: dict[tuple[str, str], frozenset],
    ) -> None:
        self.module = module
        self.function = function
        self.project = project
        self.summaries = summaries

    def join(self, left: dict, right: dict) -> dict:
        out = dict(left)
        for name, taint in right.items():
            out[name] = out.get(name, frozenset()) | taint
        return out

    def transfer(self, state: dict, node: ast.AST) -> dict:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if node.value is None:
                return state
            taint = self.taint_of(node.value, state)
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            new = dict(state)
            for target in targets:
                names = _target_names(target)
                if names:
                    for name in names:
                        if taint:
                            new[name] = taint
                        else:
                            new.pop(name, None)
                else:
                    # attribute/subscript target: taint the root object
                    root = _root_name(target)
                    if root is not None and taint:
                        new[root] = new.get(root, frozenset()) | taint
            return new
        if isinstance(node, ast.AugAssign):
            taint = self.taint_of(node.value, state)
            root = _root_name(node.target)
            if root is not None and taint:
                new = dict(state)
                new[root] = new.get(root, frozenset()) | taint
                return new
            return state
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if isinstance(call.func, ast.Attribute):
                root = _root_name(call.func)
                if root is not None:
                    if call.func.attr in ("sort", "clear"):
                        new = dict(state)
                        new.pop(root, None)
                        return new
                    taint = frozenset().union(
                        *(
                            self.taint_of(arg, state)
                            for arg in self._call_inputs(call)
                        ),
                        self.taint_of(call.func.value, state),
                    )
                    if taint:
                        new = dict(state)
                        new[root] = new.get(root, frozenset()) | taint
                        return new
            return state
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            new = dict(state)
            new.pop(node.name, None)
            return new
        if isinstance(node, ast.withitem) and node.optional_vars is not None:
            taint = self.taint_of(node.context_expr, state)
            new = dict(state)
            for name in _target_names(node.optional_vars):
                if taint:
                    new[name] = taint
                else:
                    new.pop(name, None)
            return new
        return state

    def transfer_loop(self, state: dict, node: ast.For) -> dict:
        taint = self.taint_of(node.iter, state)
        new = dict(state)
        for name in _target_names(node.target):
            if taint:
                new[name] = taint
            else:
                new.pop(name, None)
        return new

    @staticmethod
    def _call_inputs(call: ast.Call) -> list[ast.expr]:
        inputs: list[ast.expr] = []
        for arg in call.args:
            inputs.append(arg.value if isinstance(arg, ast.Starred) else arg)
        inputs.extend(kw.value for kw in call.keywords)
        return inputs

    def taint_of(self, expr: ast.expr, env: dict) -> frozenset:
        if _has_ordered_pragma(self.module, getattr(expr, "lineno", 0)):
            return frozenset()
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, (ast.Set, ast.SetComp)):
            kind = "set literal" if isinstance(expr, ast.Set) else "set comprehension"
            return frozenset({(expr.lineno, kind)})
        if isinstance(expr, ast.Call):
            return self._taint_of_call(expr, env)
        if isinstance(expr, ast.Attribute):
            return self.taint_of(expr.value, env)
        if isinstance(expr, ast.Subscript):
            return self.taint_of(expr.value, env)
        if isinstance(expr, ast.Starred):
            return self.taint_of(expr.value, env)
        if isinstance(expr, ast.BinOp):
            return self.taint_of(expr.left, env) | self.taint_of(expr.right, env)
        if isinstance(expr, ast.BoolOp):
            return frozenset().union(*(self.taint_of(v, env) for v in expr.values))
        if isinstance(expr, ast.IfExp):
            return self.taint_of(expr.body, env) | self.taint_of(expr.orelse, env)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return frozenset().union(*(self.taint_of(e, env) for e in expr.elts))
        if isinstance(expr, ast.Dict):
            parts = [self.taint_of(v, env) for v in expr.values]
            parts.extend(self.taint_of(k, env) for k in expr.keys if k is not None)
            return frozenset().union(*parts) if parts else frozenset()
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            taint = self.taint_of(expr.elt, env)
            for generator in expr.generators:
                taint |= self.taint_of(generator.iter, env)
            return taint
        if isinstance(expr, ast.DictComp):
            taint = self.taint_of(expr.key, env) | self.taint_of(expr.value, env)
            for generator in expr.generators:
                taint |= self.taint_of(generator.iter, env)
            return taint
        if isinstance(expr, ast.Compare):
            return frozenset()  # a bool carries no ordering
        if isinstance(expr, ast.UnaryOp):
            return self.taint_of(expr.operand, env)
        return frozenset()

    def _taint_of_call(self, call: ast.Call, env: dict) -> frozenset:
        func = call.func
        inputs = self._call_inputs(call)
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("set", "frozenset"):
                return frozenset({(call.lineno, f"{name}(...)")})
            if name in _CLEAN_BUILTINS:
                return frozenset()
            if name in _PASSTHROUGH_BUILTINS:
                return frozenset().union(
                    *(self.taint_of(arg, env) for arg in inputs)
                ) if inputs else frozenset()
            summary = self._resolve_name(name)
            if summary:
                return frozenset(
                    {(call.lineno, f"{name}() (returns set-ordered data)")}
                )
            # unresolved constructor/helper: conservatively pass taint through
            return frozenset().union(
                *(self.taint_of(arg, env) for arg in inputs)
            ) if inputs else frozenset()
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _UNORDERED_ATTR_CALLS:
                return frozenset({(call.lineno, _UNORDERED_ATTR_CALLS[attr])})
            if attr in _ORDERED_ATTR_CALLS:
                return self.taint_of(func.value, env)
            if attr == "sort":
                return frozenset()
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and self.function.class_name is not None
            ):
                summary = self._resolve_method(attr)
                if summary:
                    return frozenset(
                        {(call.lineno, f"self.{attr}() (returns set-ordered data)")}
                    )
            # result of a method call inherits the receiver's taint
            receiver = self.taint_of(func.value, env)
            arguments = (
                frozenset().union(*(self.taint_of(arg, env) for arg in inputs))
                if inputs
                else frozenset()
            )
            return receiver | arguments
        return frozenset()

    def _resolve_name(self, name: str) -> frozenset:
        table = self.project.symbols().get(self.function.module)
        if table is None:
            return frozenset()
        local = table.functions.get(name)
        if local is not None:
            return self.summaries.get(local.key, frozenset())
        imported = table.imported_functions.get(name)
        if imported is not None:
            target_module, original = imported
            target_table = self.project.symbols().get(target_module)
            if target_table is not None:
                target = target_table.functions.get(original)
                if target is not None:
                    return self.summaries.get(target.key, frozenset())
        return frozenset()

    def _resolve_method(self, name: str) -> frozenset:
        table = self.project.symbols().get(self.function.module)
        if table is None or self.function.class_name is None:
            return frozenset()
        methods = table.classes.get(self.function.class_name, {})
        method = methods.get(name)
        if method is not None:
            return self.summaries.get(method.key, frozenset())
        return frozenset()


class MergeOrderRule(ProjectRule):
    """RPR107 — unordered provenance may not reach result assembly.

    The parallel engine's determinism proof (PR 5) hinges on merges
    happening in chunk-index or first-occurrence order; any value that
    iterated a set (or the filesystem) on the way to a
    ``DiscoveryResult`` field or a sharded-kernel return reintroduces
    ``PYTHONHASHSEED`` order into the output.  ``sorted()`` launders the
    taint; sites whose order is proven elsewhere carry a
    ``# pragma: repro-lint ordered`` justification.
    """

    code = "RPR107"
    name = "merge-order-sensitivity"
    rationale = (
        "values derived from unordered iteration (set/frozenset, "
        "os.listdir, glob) must be canonicalized with sorted() before "
        "reaching DiscoveryResult/make_result or a sharded/merge "
        "kernel's return value"
    )
    example = (
        "    masks = compute_agree_masks(data)   # returns a set\n"
        "    for mask in masks:                  # hash order escapes\n"
        "        fds.append(expand(mask))\n"
        "    return make_result(fds, ...)        # RPR107\n"
        "fix: `for mask in sorted(masks)` or justify the site with\n"
        "`# pragma: repro-lint ordered`"
    )

    _MAX_ROUNDS = 5

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        project = _project_for(modules, shared)
        summaries = self._summaries(project, shared)
        for function in project.all_functions():
            module = project.by_relpath[function.module]
            analysis = _OrderTaintAnalysis(module, function, project, summaries)
            cfg = _cfg_of(shared, function)
            states = run_forward(cfg, analysis)
            yield from self._scan_sinks(function, module, cfg, states, analysis)

    def _summaries(
        self, project: Project, shared: dict
    ) -> dict[tuple[str, str], frozenset]:
        cached = shared.get("order_summaries")
        if cached is not None:
            return cached
        summaries: dict[tuple[str, str], frozenset] = {}
        functions = project.all_functions()
        for _ in range(self._MAX_ROUNDS):
            next_round: dict[tuple[str, str], frozenset] = {}
            for function in functions:
                module = project.by_relpath[function.module]
                analysis = _OrderTaintAnalysis(module, function, project, summaries)
                cfg = _cfg_of(shared, function)
                states = run_forward(cfg, analysis)
                returned: frozenset = frozenset()
                for node, state in statement_states(cfg, states, analysis):
                    if isinstance(node, ast.Return) and node.value is not None:
                        if _has_ordered_pragma(module, node.lineno):
                            continue
                        returned |= analysis.taint_of(node.value, state)
                next_round[function.key] = returned
            if next_round == summaries:
                break
            summaries = next_round
        shared["order_summaries"] = summaries
        return summaries

    def _scan_sinks(
        self,
        function: FunctionDef,
        module: Module,
        cfg: CFG,
        states: list,
        analysis: _OrderTaintAnalysis,
    ) -> Iterator[Finding]:
        seen: set[tuple[int, int, str]] = set()
        sink_return = _is_sink_function(function)
        for node, state in statement_states(cfg, states, analysis):
            if isinstance(node, ast.Return) and sink_return and node.value is not None:
                if _has_ordered_pragma(module, node.lineno):
                    continue
                taint = analysis.taint_of(node.value, state)
                if taint:
                    line, description = min(taint)
                    message = (
                        f"{function.qualname}: merge/sharded-kernel output "
                        f"has unordered provenance ({description}, line "
                        f"{line}); merge in chunk-index order, sort before "
                        "returning, or justify with "
                        "`# pragma: repro-lint ordered`"
                    )
                    yield from self._emit(module, node, message, seen)
            for expr in shallow_exprs(node):
                for call in ast.walk(expr):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = self._sink_name(call)
                    if callee is None:
                        continue
                    if _has_ordered_pragma(module, call.lineno):
                        continue
                    for arg in analysis._call_inputs(call):
                        if _is_set_valued(arg):
                            # a set handed to a set-typed field keeps set
                            # semantics; no iteration order materializes
                            continue
                        taint = analysis.taint_of(arg, state)
                        if not taint:
                            continue
                        line, description = min(taint)
                        message = (
                            f"{function.qualname}: value reaching "
                            f"{callee}() has unordered provenance "
                            f"({description}, line {line}); canonicalize "
                            "with sorted(...) or justify with "
                            "`# pragma: repro-lint ordered`"
                        )
                        yield from self._emit(module, call, message, seen)

    @staticmethod
    def _sink_name(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _RESULT_SINKS:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in _RESULT_SINKS:
            return func.attr
        return None

    def _emit(
        self,
        module: Module,
        node: ast.AST,
        message: str,
        seen: set[tuple[int, int, str]],
    ) -> Iterator[Finding]:
        key = (node.lineno, node.col_offset, message)
        if key in seen:
            return
        seen.add(key)
        yield Finding(
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=self.code,
            message=message,
        )


# ---------------------------------------------------------------------------
# RPR108 — numeric-width overflow
# ---------------------------------------------------------------------------

DATA_BITS = 32
"""Assumed bit width of a single label column's values: label codes are
dense row indices, so 2^32 distinct values per column is the modelling
bound (documented in DESIGN.md §6)."""

_INT64_BITS = 64


@dataclass(frozen=True)
class _Width:
    """Abstract magnitude: an upper bound on a value's bit length.

    ``card`` marks cardinality values (the ``x.max(...) + 1`` pattern) —
    the multiplier of a group-key fold.  ``safe`` marks values dominated
    by a fold-limit guard (the false edge of ``if bound * card >=
    LIMIT``) or freshly re-densified via ``np.unique``.  ``origins``
    carries the variable names a value was derived from, so marking
    ``bound`` safe also marks the ``keys`` it bounds.
    """

    bits: float
    card: bool = False
    safe: bool = False
    origins: frozenset = frozenset()


def _join_width(left: _Width, right: _Width) -> _Width:
    return _Width(
        bits=max(left.bits, right.bits),
        card=left.card or right.card,
        safe=left.safe and right.safe,
        origins=left.origins | right.origins,
    )


class _WidthAnalysis(ForwardAnalysis):
    """Environment: name -> :class:`_Width`."""

    def join(self, left: dict, right: dict) -> dict:
        out = dict(left)
        for name, width in right.items():
            existing = out.get(name)
            out[name] = width if existing is None else _join_width(existing, width)
        return out

    def widen(self, previous: dict, incoming: dict) -> dict:
        out = self.join(previous, incoming)
        for name, width in out.items():
            before = previous.get(name)
            if before is not None and width.bits > before.bits:
                out[name] = replace(width, bits=float("inf"))
        return out

    def transfer(self, state: dict, node: ast.AST) -> dict:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if node.value is None:
                return state
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            new = dict(state)
            densified = self._densify_target(node.value, targets)
            if densified is not None:
                name, origins = densified
                new[name] = _Width(DATA_BITS, origins=origins)
                return new
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                new[targets[0].id] = self.classify(node.value, state)
            else:
                for target in targets:
                    for name in _target_names(target):
                        new.pop(name, None)
            return new
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            name = node.target.id
            current = state.get(name, _Width(DATA_BITS, origins=frozenset({name})))
            operand = self.classify(node.value, state)
            new = dict(state)
            if isinstance(node.op, ast.Mult):
                new[name] = _Width(
                    current.bits + operand.bits,
                    safe=current.safe and operand.safe,
                    origins=current.origins | operand.origins,
                )
            else:
                new[name] = _Width(
                    max(current.bits, operand.bits) + 1,
                    safe=current.safe and operand.safe,
                    origins=current.origins | operand.origins,
                )
            return new
        return state

    def transfer_loop(self, state: dict, node: ast.For) -> dict:
        new = dict(state)
        for name in _target_names(node.target):
            new[name] = _Width(DATA_BITS, origins=frozenset({name}))
        return new

    @staticmethod
    def _densify_target(
        value: ast.expr, targets: list[ast.expr]
    ) -> tuple[str, frozenset] | None:
        """Match ``_, keys = np.unique(x, return_inverse=True)``."""
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "unique"
            and any(kw.arg == "return_inverse" for kw in value.keywords)
        ):
            return None
        if len(targets) == 1 and isinstance(targets[0], ast.Tuple):
            elements = targets[0].elts
            if len(elements) == 2 and isinstance(elements[1], ast.Name):
                origin = _root_name(value.args[0]) if value.args else None
                origins = frozenset({origin}) if origin else frozenset()
                return elements[1].id, origins
        return None

    def classify(self, expr: ast.expr, env: dict) -> _Width:
        if (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, int)
            and not isinstance(expr.value, bool)
        ):
            return _Width(max(1, int(expr.value).bit_length()))
        if isinstance(expr, ast.Name):
            got = env.get(expr.id)
            if got is not None:
                return got
            return _Width(DATA_BITS, origins=frozenset({expr.id}))
        if isinstance(expr, ast.BinOp):
            left = self.classify(expr.left, env)
            right = self.classify(expr.right, env)
            if (
                isinstance(expr.op, ast.Add)
                and isinstance(expr.right, ast.Constant)
                and expr.right.value == 1
                and _mentions_max_call(expr.left)
            ):
                return _Width(DATA_BITS, card=True, origins=left.origins)
            if isinstance(expr.op, ast.Mult):
                return _Width(
                    left.bits + right.bits,
                    safe=left.safe and right.safe,
                    origins=left.origins | right.origins,
                )
            if isinstance(expr.op, (ast.Add, ast.Sub, ast.BitOr, ast.BitXor)):
                return _Width(
                    max(left.bits, right.bits) + 1,
                    safe=left.safe and right.safe,
                    origins=left.origins | right.origins,
                )
            if isinstance(expr.op, (ast.FloorDiv, ast.Mod, ast.RShift, ast.BitAnd)):
                return _Width(left.bits, safe=left.safe, origins=left.origins)
            return _Width(
                max(left.bits, right.bits), origins=left.origins | right.origins
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "int" and expr.args:
                return self.classify(expr.args[0], env)
            if isinstance(func, ast.Attribute):
                root = _root_name(func)
                origins = frozenset({root}) if root else frozenset()
                return _Width(DATA_BITS, origins=origins)
            return _Width(DATA_BITS)
        if isinstance(expr, ast.Subscript):
            root = _root_name(expr)
            origins = frozenset({root}) if root else frozenset()
            return _Width(DATA_BITS, origins=origins)
        if isinstance(expr, ast.UnaryOp):
            return self.classify(expr.operand, env)
        if isinstance(expr, ast.IfExp):
            return _join_width(
                self.classify(expr.body, env), self.classify(expr.orelse, env)
            )
        if isinstance(expr, ast.Attribute):
            root = _root_name(expr)
            origins = frozenset({root}) if root else frozenset()
            return _Width(DATA_BITS, origins=origins)
        return _Width(DATA_BITS)

    def refine(self, state: dict, test: ast.expr, branch: bool) -> dict:
        guard = _fold_guard(test)
        if guard is None:
            return state
        left, right, safe_branch = guard
        if branch != safe_branch:
            return state
        marked: set[str] = set()
        for operand in (left, right):
            for node in ast.walk(operand):
                if isinstance(node, ast.Name):
                    marked.add(node.id)
        # derivation closure: a guard on `bound` (= max(keys)+1) proves
        # `keys` itself small, so follow origins one step.
        for name in list(marked):
            width = state.get(name)
            if width is not None:
                marked.update(width.origins)
        new = dict(state)
        for name in marked:
            width = new.get(name)
            if width is None:
                new[name] = _Width(DATA_BITS, safe=True, origins=frozenset({name}))
            else:
                new[name] = replace(width, safe=True)
        return new


def _mentions_max_call(expr: ast.expr) -> bool:
    return any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "max"
        for node in ast.walk(expr)
    )


def _fold_guard(test: ast.expr) -> tuple[ast.expr, ast.expr, bool] | None:
    """Recognize ``a * b >= LIMIT``-shaped guards.

    Returns the multiply's operands plus which branch proves safety:
    the false edge for ``a * b >= LIMIT`` / ``a * b > LIMIT``, the true
    edge for ``a * b < LIMIT`` / ``a * b <= LIMIT`` (and mirrored
    comparisons).
    """
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    op = test.ops[0]
    left, right = test.left, test.comparators[0]
    if isinstance(left, ast.BinOp) and isinstance(left.op, ast.Mult):
        if isinstance(op, (ast.GtE, ast.Gt)):
            return left.left, left.right, False
        if isinstance(op, (ast.LtE, ast.Lt)):
            return left.left, left.right, True
    if isinstance(right, ast.BinOp) and isinstance(right.op, ast.Mult):
        if isinstance(op, (ast.GtE, ast.Gt)):
            return right.left, right.right, True
        if isinstance(op, (ast.LtE, ast.Lt)):
            return right.left, right.right, False
    return None


class NumericWidthRule(ProjectRule):
    """RPR108 — group-key folds must not be able to wrap int64.

    The historical bug class: ``keys * cardinality + labels`` with 61
    folded columns reaches 2^61 keys; one more 8-label fold crosses
    2^64, wraps, and a violated FD can silently collide into "valid".
    The width domain bounds every multiply; a fold whose worst case
    reaches 2^64 is flagged unless a fold-limit guard dominates it or
    the keys were just re-densified (both recognized flow-sensitively,
    so ``relation/validate.fold_labels`` itself is clean).
    """

    code = "RPR108"
    name = "numeric-width-overflow"
    rationale = (
        "a group-key fold (multiply by a label cardinality) whose "
        "worst-case magnitude reaches 2^64 can silently wrap int64 and "
        "collide distinct groups; guard with a fold limit and "
        "re-densify via np.unique first"
    )
    example = (
        "    cardinality = int(labels.max(initial=0)) + 1\n"
        "    keys = keys * cardinality + labels   # RPR108: may reach 2^64\n"
        "fix: check `bound * cardinality >= FOLD_LIMIT` first and\n"
        "re-densify keys via np.unique(keys, return_inverse=True)"
    )

    #: packages whose arithmetic can touch group-key folds
    _SCOPED_PACKAGES = ("relation", "engine", "core", "algorithms", "fd")

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        project = _project_for(modules, shared)
        analysis = _WidthAnalysis()
        for function in project.all_functions():
            module = project.by_relpath[function.module]
            if not module.in_packages(*self._SCOPED_PACKAGES):
                continue
            if not self._mentions_multiply(function.node):
                continue
            yield from self._check_function(function, module, shared, analysis)

    @staticmethod
    def _mentions_multiply(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Mult):
                return True
            if isinstance(child, ast.AugAssign) and isinstance(child.op, ast.Mult):
                return True
        return False

    def _check_function(
        self,
        function: FunctionDef,
        module: Module,
        shared: dict,
        analysis: _WidthAnalysis,
    ) -> Iterator[Finding]:
        cfg = _cfg_of(shared, function)
        states = run_forward(cfg, analysis)
        seen: set[tuple[int, int]] = set()
        for node, state in statement_states(cfg, states, analysis):
            if isinstance(node, ast.expr):
                continue  # branch tests are guards, not folds
            if isinstance(node, (ast.Assert,)):
                continue
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Mult):
                left = self._width_of_target(node.target, state, analysis)
                right = analysis.classify(node.value, state)
                yield from self._judge(
                    function, module, node, left, right, state, seen
                )
            for expr in shallow_exprs(node):
                excluded = _guard_mults(expr)
                for child in ast.walk(expr):
                    if (
                        isinstance(child, ast.BinOp)
                        and isinstance(child.op, ast.Mult)
                        and id(child) not in excluded
                    ):
                        left = analysis.classify(child.left, state)
                        right = analysis.classify(child.right, state)
                        yield from self._judge(
                            function, module, child, left, right, state, seen
                        )

    @staticmethod
    def _width_of_target(
        target: ast.expr, state: dict, analysis: _WidthAnalysis
    ) -> _Width:
        if isinstance(target, ast.Name):
            return state.get(
                target.id, _Width(DATA_BITS, origins=frozenset({target.id}))
            )
        return analysis.classify(target, state)

    def _judge(
        self,
        function: FunctionDef,
        module: Module,
        node: ast.AST,
        left: _Width,
        right: _Width,
        state: dict,
        seen: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        if left.safe or right.safe:
            return
        if not (left.card or right.card):
            return
        worst = left.bits + right.bits
        if worst < _INT64_BITS:
            return
        key = (node.lineno, node.col_offset)
        if key in seen:
            return
        seen.add(key)
        magnitude = (
            "unbounded (loop-accumulated fold)"
            if worst == float("inf")
            else f"2^{int(worst)}"
        )
        yield Finding(
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=self.code,
            message=(
                f"{function.qualname}: group-key fold multiplies by a "
                f"label cardinality with worst case {magnitude} — this "
                "can wrap int64 and collide distinct groups; guard with "
                "a fold limit and re-densify via np.unique "
                "(cf. relation/validate.fold_labels)"
            ),
        )


def _guard_mults(expr: ast.expr) -> set[int]:
    """ids of multiply nodes appearing inside comparisons (guards)."""
    excluded: set[int] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Compare):
            for operand in (node.left, *node.comparators):
                for child in ast.walk(operand):
                    if isinstance(child, ast.BinOp) and isinstance(
                        child.op, ast.Mult
                    ):
                        excluded.add(id(child))
    return excluded


def default_dataflow_rules() -> list[ProjectRule]:
    """One fresh instance of every dataflow-backed rule, in code order."""
    return [ParallelStateEscapeRule(), MergeOrderRule(), NumericWidthRule()]
