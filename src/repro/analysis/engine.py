"""The AST-walking lint engine behind ``repro-lint``.

The engine is deliberately tiny — a purpose-built checker for *this*
codebase's invariants, not a general linter.  It parses every Python file
under a root once, walks each syntax tree once, and dispatches nodes to
the registered :class:`Rule` instances by node type.  Rules emit
:class:`Finding` records carrying a stable rule code (``RPR001``…)
and a ``file:line`` location.

Three suppression layers keep the tool honest rather than noisy:

* **inline** — ``# repro-lint: disable=RPR002`` on the offending line
  silences the listed codes for that line only;
* **file-level** — a ``# repro-lint: disable-file=RPR002`` comment
  anywhere in a file's first 30 lines declares the whole module exempt
  from the listed codes (used by the bitmask tree kernels, which are
  allowed raw shift arithmetic for performance — see ``fd/attrset.py``);
* **baseline** — grandfathered findings recorded by ``--update-baseline``
  (see :mod:`repro.analysis.baseline`) are reported separately and do not
  fail the build.

All suppression mechanisms are auditable in review: each is a literal
string naming the rule code it disables.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import cycle: cache stores engine types
    from .cache import LintCache

_INLINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9, ]+)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9, ]+)")
_FILE_PRAGMA_WINDOW = 30
"""File-level pragmas must appear in the first this-many lines."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    """Path relative to the scan root, with forward slashes."""
    line: int
    col: int
    rule: str
    """Rule code, e.g. ``"RPR001"``."""
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes the line number so that unrelated edits
        moving a grandfathered finding up or down the file do not break
        the build; the (rule, path, message) triple plus an occurrence
        count is stable enough in practice.
        """
        return (self.rule, self.path, self.message)


@dataclass
class Module:
    """One parsed source file handed to every rule."""

    path: Path
    """Absolute filesystem path."""
    relpath: str
    """Path relative to the scan root, forward slashes (rules match on this)."""
    tree: ast.Module
    lines: Sequence[str]
    file_suppressions: frozenset[str] = frozenset()

    @property
    def package_parts(self) -> tuple[str, ...]:
        """Directory components of :attr:`relpath` (no filename)."""
        return tuple(self.relpath.split("/")[:-1])

    def in_packages(self, *names: str) -> bool:
        """True if any directory component of the path matches a name.

        Matching on components (not just the first) keeps path-scoped
        rules working when the scan root is the package itself
        (``fd/attrset.py``), its parent (``repro/fd/attrset.py``), or a
        fixture tree mirroring the layout.
        """
        parts = self.package_parts
        return any(part in names for part in parts)


class Rule:
    """Base class for repo-specific lint rules.

    Subclasses set :attr:`code`/:attr:`name`/:attr:`rationale`, declare
    the AST node types they want via :attr:`interests`, and implement
    :meth:`visit`; the engine walks each tree exactly once and fans nodes
    out to every interested rule.  Rules needing whole-module context can
    instead (or additionally) override :meth:`check_module`, which runs
    before the walk.
    """

    code: str = "RPR000"
    name: str = "unnamed"
    rationale: str = ""
    example: str = ""
    """Optional short before/after snippet shown by ``--explain``."""
    interests: tuple[type[ast.AST], ...] = ()

    def check_module(self, module: Module) -> Iterator[Finding]:
        """Whole-file hook; default yields nothing."""
        return iter(())

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        """Per-node hook, called for every node matching :attr:`interests`."""
        return iter(())

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (RPR101…).

    Unlike per-file rules, a project rule sees every module the scan
    loaded at once, after all roots were walked.  ``shared`` is a scratch
    dict with the lifetime of one ``analyze()`` call: rules use it to
    share expensive whole-program structures (the import graph, mutation
    summaries) instead of recomputing them per rule.
    """

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        """Whole-project hook; default yields nothing."""
        return iter(())


@dataclass
class AnalysisResult:
    """Everything one run produced, before baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)
    paths: dict[str, str] = field(default_factory=dict)
    """Finding relpath -> absolute filesystem path (for annotations)."""


def _parse_suppressions(lines: Sequence[str]) -> tuple[frozenset[str], dict[int, frozenset[str]]]:
    """Extract file-level and per-line ``repro-lint`` pragmas."""
    file_codes: set[str] = set()
    line_codes: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        inline = _INLINE_RE.search(text)
        if inline:
            codes = frozenset(
                code.strip() for code in inline.group(1).split(",") if code.strip()
            )
            line_codes[number] = codes
        if number <= _FILE_PRAGMA_WINDOW:
            whole = _FILE_RE.search(text)
            if whole:
                file_codes.update(
                    code.strip() for code in whole.group(1).split(",") if code.strip()
                )
    return frozenset(file_codes), line_codes


def load_module(path: Path, root: Path) -> Module | None:
    """Parse ``path`` into a :class:`Module`, or None on syntax error."""
    try:
        data = path.read_bytes()
    except OSError:
        return None
    return load_module_bytes(path, path.relative_to(root).as_posix(), data)


def load_module_bytes(path: Path, relpath: str, data: bytes) -> Module | None:
    """Parse already-read bytes into a :class:`Module` (None on error)."""
    try:
        encoding, _ = tokenize.detect_encoding(io.BytesIO(data).readline)
        source = data.decode(encoding)
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, ValueError):
        return None
    lines = source.splitlines()
    file_suppressions, _ = _parse_suppressions(lines)
    return Module(
        path=path,
        relpath=relpath,
        tree=tree,
        lines=lines,
        file_suppressions=file_suppressions,
    )


def iter_python_files(root: Path) -> Iterator[Path]:
    """Yield ``.py`` files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts and ".egg-info" not in str(path)
    )


def _dispatch(rules: Sequence[Rule], module: Module) -> Iterator[Finding]:
    """Run every rule over one module: module hooks, then a single walk."""
    for rule in rules:
        yield from rule.check_module(module)
    interested: list[tuple[Rule, tuple[type[ast.AST], ...]]] = [
        (rule, rule.interests) for rule in rules if rule.interests
    ]
    for node in ast.walk(module.tree):
        for rule, types in interested:
            if isinstance(node, types):
                yield from rule.visit(node, module)


def _suppressed(finding: Finding, module: Module, line_codes: dict[int, frozenset[str]]) -> bool:
    if finding.rule in module.file_suppressions:
        return True
    codes = line_codes.get(finding.line)
    return codes is not None and finding.rule in codes


def analyze(
    roots: Iterable[Path],
    rules: Sequence[Rule],
    select: Iterable[str] | None = None,
    cache: "LintCache | None" = None,
) -> AnalysisResult:
    """Run ``rules`` over every Python file under each root.

    ``select`` optionally restricts to a subset of rule codes.  Findings
    come back sorted by (path, line, col, rule); inline and file-level
    suppressions are already applied, baseline filtering is the caller's
    job (:func:`repro.analysis.baseline.partition`).

    With a ``cache`` (:class:`repro.analysis.cache.LintCache`), results
    are memoized on content hashes: an unchanged tree replays the whole
    run without parsing, and a partially-changed tree re-runs per-file
    rules only on the files that changed (the whole-program passes always
    re-run on any change — they see every module at once).
    """
    if select is not None:
        wanted = set(select)
        rules = [rule for rule in rules if rule.code in wanted]
    per_module_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    result = AnalysisResult()

    # Enumerate and read every file up front so the cache can hash the
    # tree before any parsing happens.
    sources: list[tuple[Path, str, bytes | None]] = []
    seen_paths: set[Path] = set()
    for root in roots:
        root = root.resolve()
        scan_base = root if root.is_dir() else root.parent
        # Anchor relpaths at the package root, not the scan argument:
        # ``repro-lint src/repro/relation`` must still see ``relation/``
        # in the path or the path-scoped rules silently switch off.
        while (scan_base / "__init__.py").exists():
            scan_base = scan_base.parent
        for path in iter_python_files(root):
            if path in seen_paths:
                continue  # overlapping roots: scan each file once
            seen_paths.add(path)
            try:
                data = path.read_bytes()
            except OSError:
                data = None
            sources.append((path, path.relative_to(scan_base).as_posix(), data))

    codes = ",".join(sorted(rule.code for rule in rules))
    file_keys: list[str | None] = [None] * len(sources)
    tree_key = None
    if cache is not None:
        file_keys = [
            cache.file_key(relpath, data, codes) if data is not None else None
            for _, relpath, data in sources
        ]
        tree_key = cache.tree_key([key or "unreadable" for key in file_keys], codes)
        replayed = cache.get_result(tree_key)
        if replayed is not None:
            return replayed

    loaded: list[tuple[Module, dict[int, frozenset[str]]]] = []
    for (path, relpath, data), file_key in zip(sources, file_keys):
        module = load_module_bytes(path, relpath, data) if data is not None else None
        if module is None:
            result.parse_errors.append(str(path))
            continue
        result.files_scanned += 1
        result.paths[module.relpath] = str(module.path)
        _, line_codes = _parse_suppressions(module.lines)
        loaded.append((module, line_codes))
        cached = cache.get_file(file_key) if cache is not None else None
        if cached is None:
            fresh = [
                finding
                for finding in _dispatch(per_module_rules, module)
                if not _suppressed(finding, module, line_codes)
            ]
            if cache is not None:
                cache.put_file(file_key, fresh)
            result.findings.extend(fresh)
        else:
            result.findings.extend(cached)
    if project_rules and loaded:
        modules = [module for module, _ in loaded]
        by_relpath = {module.relpath: (module, codes) for module, codes in loaded}
        shared: dict = {}
        for rule in project_rules:
            for finding in rule.check_modules(modules, shared):
                entry = by_relpath.get(finding.path)
                if entry is not None and _suppressed(finding, entry[0], entry[1]):
                    continue
                result.findings.append(finding)
    result.findings.sort()
    if cache is not None and tree_key is not None:
        cache.put_result(tree_key, result)
        cache.save()
    return result
