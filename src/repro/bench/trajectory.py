"""The benchmark-trajectory harness: record + compare ``BENCH_N.json``.

The repo's perf history used to be one ad-hoc snapshot
(``benchmarks/results/BENCH_5.json``) with nothing to hold a second
measurement against it.  This module makes the trajectory a first-class,
regression-gated artifact:

* **A stable schema** (:data:`SCHEMA`, ``repro-bench/1``): one entry per
  ``dataset[rows x cols]/algorithm`` workload carrying every repeat's
  wall time, the per-phase self-time breakdown from
  :class:`~repro.obs.RunTelemetry`, peak tracemalloc / RSS bytes,
  partition-cache hit rate, and the jobs/backend the cell ran under.
* **`repro-bench record`** — measures the standard workload matrix and
  writes the JSON.  Wall times come from plain min-of-k repeats with
  *no* tracing and *no* tracemalloc (both skew the clock); one extra
  profiled pass per cell then supplies phases and memory attribution.
* **`repro-bench compare OLD NEW`** — a noise-aware gate.  For every
  workload present on both sides it takes best-of-repeats walls, the
  relative change ``(new - old) / old``, and an allowance that widens
  with measured spread: ``max(threshold, sigmas × pooled CV)`` where the
  coefficients of variation come from :class:`~repro.metrics.TimedRun`
  spread over the recorded repeats, plus a larger floor when either side
  has a single repeat (legacy snapshots).  Exit status 1 on regression —
  the contract the CI ``bench-regression`` job gates on.

Legacy ``BENCH_5.json`` (the pre-schema layout) loads through an
adapter, so the committed baseline is comparable without rewriting
history.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..algorithms import create
from ..core import IncrementalEulerFD
from ..datasets import registry
from ..engine import close_all_pools
from ..metrics import TimedRun
from ..obs import memory_profiling, monotonic, peak_rss_bytes
from ..relation import Relation
from .runner import AlgorithmRun, run_algorithm

SCHEMA = "repro-bench/1"
"""Schema tag every trajectory file written by this module carries."""

WORKLOADS = [
    ("fd-reduced-30", 2000, 5),
    ("plista", 300, 5),
    ("uniprot", 200, 5),
]
"""(dataset, rows, seed) — the standard matrix, matching BENCH_5's."""

QUICK_WORKLOADS = [("fd-reduced-30", 500, 5)]
"""The CI-sized cut used for fresh-runner smoke comparisons."""

ALGORITHMS = ["eulerfd", "hyfd", "fdep"]
QUICK_ALGORITHMS = ["eulerfd"]

APPEND_BATCHES = [1, 16, 64, 256]
"""Batch sizes of the delta-append series (``--append-series``)."""

APPEND_WORKLOADS = [("fd-reduced-30", 2000, 5)]
"""The dataset the append-vs-rediscovery series is recorded on."""

DEFAULT_REPEATS = 3
DEFAULT_THRESHOLD = 0.10
"""Relative slowdown tolerated even with zero measured noise."""

DEFAULT_SIGMAS = 3.0
"""Noise multiplier: allowance grows to ``sigmas × pooled CV``."""

SINGLE_SAMPLE_FLOOR = 0.25
"""Minimum allowance when either side recorded a single repeat."""


def host_fingerprint() -> dict[str, Any]:
    """The recording host's identity, stored alongside every trajectory.

    Cross-host comparisons are structurally fine but statistically
    meaningless; the compare CLI downgrades them to report-only unless
    forced with ``--strict``.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


# -- recording -----------------------------------------------------------------


def _spread(all_seconds: list[float]) -> TimedRun:
    """The recorded repeats wrapped for TimedRun's spread statistics."""
    ordered = sorted(all_seconds)
    return TimedRun(
        value=None,
        seconds=ordered[len(ordered) // 2],
        repeats=len(ordered),
        all_seconds=tuple(all_seconds),
    )


def _hit_rate(partition_cache: dict[str, int]) -> float | None:
    hits = partition_cache.get("hits", 0)
    misses = partition_cache.get("misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def _profiled_pass(
    algorithm: str,
    relation: Any,
    jobs: str | None,
    backend: str | None = None,
) -> dict[str, Any]:
    """One traced + memory-profiled run supplying attribution fields.

    Kept strictly separate from the timed repeats: tracemalloc roughly
    halves interpreter speed and tracing allocates an event per counter
    bump, so folding either into the walls would poison comparability
    with snapshots recorded without them.
    """
    with memory_profiling() as profiler:
        traced = run_algorithm(
            create(algorithm).__class__,
            relation,
            trace=True,
            jobs=jobs,
            backend=backend,
        )
    phases: dict[str, float] = {}
    if traced.telemetry is not None:
        phases = {
            stat.path: stat.self_seconds for stat in traced.telemetry.phases
        }
    return {
        "phases": phases,
        "memory_phases": dict(sorted(profiler.peaks.items())),
        "peak_tracemalloc_bytes": profiler.run_peak(),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def _record_cell(
    algorithm: str,
    relation: Any,
    repeats: int,
    jobs: str | None,
    memory: bool,
    backend: str | None = None,
) -> dict[str, Any]:
    run: AlgorithmRun = run_algorithm(
        create(algorithm).__class__,
        relation,
        repeats=repeats,
        jobs=jobs,
        backend=backend,
    )
    if not run.ok or run.seconds is None:
        return {"skipped": run.skipped}
    spread = _spread(list(run.all_seconds))
    entry: dict[str, Any] = {
        "wall_seconds": run.seconds,
        "best_seconds": spread.best,
        "stdev_seconds": spread.stdev,
        "all_seconds": list(run.all_seconds),
        "repeats": len(run.all_seconds),
        "fd_count": len(run.fds) if run.fds is not None else None,
        "jobs": run.jobs,
        "backend": run.backend,
        "cache_hit_rate": _hit_rate(run.partition_cache),
    }
    if memory:
        entry.update(_profiled_pass(algorithm, relation, jobs, backend))
    return entry


def record_trajectory(
    bench_name: str,
    workloads: list[tuple[str, int, int]] | None = None,
    algorithms: list[str] | None = None,
    repeats: int = DEFAULT_REPEATS,
    jobs: str | None = None,
    memory: bool = True,
    description: str = "",
    backends: list[str] | None = None,
) -> dict[str, Any]:
    """Measure the workload matrix and return the trajectory document.

    Each cell runs ``repeats`` untraced wall-clock repeats (median and
    min are both kept) and, with ``memory`` on, one extra traced +
    tracemalloc'd pass for phase and memory attribution.

    ``backends`` adds extra per-backend cells: the entry ``"default"``
    (or ``None``) records under the session-default backend with the
    historical workload labels — the ones the regression gate matches
    against earlier snapshots — while any named backend (``"columnar"``)
    records the same matrix under ``label@backend``.  Named-backend cells
    only ever appear as 'added' against a snapshot that lacks them, so
    introducing a backend never breaks comparability.
    """
    workloads = workloads if workloads is not None else WORKLOADS
    algorithms = algorithms if algorithms is not None else ALGORITHMS
    backend_list: list[str | None] = [
        None if name in (None, "default") else name
        for name in (backends if backends else [None])
    ]
    entries: dict[str, dict[str, Any]] = {}
    try:
        for name, rows, seed in workloads:
            relation = registry.make(name, rows=rows, seed=seed)
            for algorithm in algorithms:
                base = f"{name}[{rows}x{relation.num_columns}]/{algorithm}"
                for backend in backend_list:
                    label = base if backend is None else f"{base}@{backend}"
                    entries[label] = _record_cell(
                        algorithm, relation, repeats, jobs, memory, backend
                    )
    finally:
        # A crashed workload must still unlink published segments; only
        # the atexit hook would otherwise stand between us and orphans.
        close_all_pools()
    return {
        "schema": SCHEMA,
        "bench": bench_name,
        "description": description,
        "host": host_fingerprint(),
        "jobs": jobs or "serial",
        "repeats": repeats,
        "backends": [name or "default" for name in backend_list],
        "workloads": entries,
    }


# -- the append series (delta engine vs full re-discovery) ---------------------


def _append_cell(
    relation: Any,
    batch_rows: int,
    repeats: int,
    jobs: str | None,
    backend: str | None,
) -> dict[str, Any]:
    """Time one delta append of the withheld last ``batch_rows`` rows.

    Every repeat rebuilds a fresh :class:`IncrementalEulerFD` session on
    the base prefix — base profiling is setup, excluded from the clock —
    then times a single ``append`` of the suffix.  ``full_seconds`` is
    best-of-repeats from-scratch EulerFD discovery on the grown relation
    under the same engine settings; ``speedup`` divides the two, the
    number the delta engine exists to maximize.
    """
    rows = list(relation.iter_rows())
    if batch_rows >= len(rows):
        return {"skipped": f"batch {batch_rows} >= relation {len(rows)}"}
    base = Relation.from_rows(
        rows[: len(rows) - batch_rows], relation.column_names
    )
    batch = rows[len(rows) - batch_rows :]
    walls: list[float] = []
    fd_count = None
    for _ in range(repeats):
        session = IncrementalEulerFD(base, jobs=jobs, backend=backend)
        start = monotonic()
        result = session.append(batch)
        walls.append(monotonic() - start)
        fd_count = len(result.fds)
    spread = _spread(walls)
    full: AlgorithmRun = run_algorithm(
        create("eulerfd").__class__,
        relation,
        repeats=repeats,
        jobs=jobs,
        backend=backend,
    )
    entry: dict[str, Any] = {
        "wall_seconds": spread.seconds,
        "best_seconds": spread.best,
        "stdev_seconds": spread.stdev,
        "all_seconds": walls,
        "repeats": repeats,
        "fd_count": fd_count,
        "jobs": jobs or 1,
        "backend": backend,
        "cache_hit_rate": None,
        "batch_rows": batch_rows,
        "base_rows": len(rows) - batch_rows,
    }
    if full.ok and full.seconds is not None:
        full_best = min(full.all_seconds)
        entry["full_seconds"] = full_best
        entry["full_all_seconds"] = list(full.all_seconds)
        entry["speedup"] = full_best / spread.best
    return entry


def record_append_series(
    workloads: list[tuple[str, int, int]] | None = None,
    batch_sizes: list[int] | None = None,
    repeats: int = DEFAULT_REPEATS,
    jobs: str | None = None,
    backends: list[str] | None = None,
) -> dict[str, dict[str, Any]]:
    """The append-latency cells: ``label/append[B]`` per batch size.

    Each cell records the latency of absorbing a batch of ``B`` rows
    through the delta engine next to the cost of full re-discovery on
    the same grown relation.  Reading the series across increasing ``B``
    locates the crossover — the batch size past which re-running from
    scratch stops being slower.  The labels only ever appear as 'added'
    against snapshots that predate the series, so the regression gate's
    comparability is preserved.
    """
    workloads = workloads if workloads is not None else APPEND_WORKLOADS
    batch_sizes = batch_sizes if batch_sizes is not None else APPEND_BATCHES
    backend_list: list[str | None] = [
        None if name in (None, "default") else name
        for name in (backends if backends else [None])
    ]
    entries: dict[str, dict[str, Any]] = {}
    try:
        for name, rows, seed in workloads:
            relation = registry.make(name, rows=rows, seed=seed)
            base = f"{name}[{rows}x{relation.num_columns}]"
            for backend in backend_list:
                for batch_rows in batch_sizes:
                    label = f"{base}/append[{batch_rows}]"
                    if backend is not None:
                        label = f"{label}@{backend}"
                    entries[label] = _append_cell(
                        relation, batch_rows, repeats, jobs, backend
                    )
    finally:
        close_all_pools()
    return entries


# -- loading (with the legacy BENCH_5 adapter) ---------------------------------


def _adapt_legacy(document: dict[str, Any]) -> dict[str, Any]:
    """Normalize a pre-schema baseline (BENCH_5 layout) to ``repro-bench/1``.

    Only the serial algorithm cells carry over — they are the
    single-repeat walls comparable with a serial re-record; kernel and
    seen-dict micro sections have no counterpart in the new schema.
    """
    entries: dict[str, dict[str, Any]] = {}
    for label, per_algorithm in document.get("algorithms", {}).items():
        for algorithm, cells in per_algorithm.items():
            serial = cells.get("serial")
            if not isinstance(serial, dict) or serial.get("seconds") is None:
                continue
            seconds = float(serial["seconds"])
            entries[f"{label}/{algorithm}"] = {
                "wall_seconds": seconds,
                "best_seconds": seconds,
                "stdev_seconds": 0.0,
                "all_seconds": [seconds],
                "repeats": 1,
                "fd_count": serial.get("fd_count"),
                "jobs": serial.get("jobs", 1),
                "backend": None,
                "cache_hit_rate": _hit_rate(serial.get("partition_cache", {})),
            }
    return {
        "schema": SCHEMA,
        "bench": document.get("bench", "legacy"),
        "description": document.get("description", ""),
        "host": document.get("host", {}),
        "jobs": "serial",
        "repeats": 1,
        "workloads": entries,
    }


def load_trajectory(path: str | Path) -> dict[str, Any]:
    """Read a trajectory file, adapting the legacy layout when needed."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("schema") == SCHEMA:
        return document
    if "algorithms" in document:
        return _adapt_legacy(document)
    raise ValueError(f"not a trajectory file: {path}")


# -- comparison ----------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """One workload's verdict: relative change against its allowance."""

    workload: str
    status: str
    """'ok', 'improvement', 'regression', 'added', 'removed' or 'skipped'."""
    old_best: float | None = None
    new_best: float | None = None
    rel_change: float | None = None
    allowance: float | None = None


def _entry_spread(entry: dict[str, Any]) -> TimedRun:
    return _spread([float(s) for s in entry["all_seconds"]])


def compare_entries(
    workload: str,
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    sigmas: float = DEFAULT_SIGMAS,
    single_sample_floor: float = SINGLE_SAMPLE_FLOOR,
) -> Comparison:
    """Judge one workload: noise-aware relative change on best-of-k walls.

    The allowance is ``max(threshold, sigmas × pooled CV)`` where each
    side's coefficient of variation is ``TimedRun.stdev / median`` over
    its recorded repeats; a side with one repeat contributes no CV but
    raises the allowance to ``single_sample_floor`` since its noise is
    simply unknown.

    Pure: computes a verdict from the two entries.
    """
    if "skipped" in old or "skipped" in new:
        return Comparison(workload, "skipped")
    old_run = _entry_spread(old)
    new_run = _entry_spread(new)
    old_best, new_best = old_run.best, new_run.best
    rel = (new_best - old_best) / old_best
    pooled_cv = (
        (old_run.stdev / old_run.seconds) ** 2
        + (new_run.stdev / new_run.seconds) ** 2
    ) ** 0.5
    allowance = max(threshold, sigmas * pooled_cv)
    if old_run.repeats < 2 or new_run.repeats < 2:
        allowance = max(allowance, single_sample_floor)
    if rel > allowance:
        status = "regression"
    elif rel < -allowance:
        status = "improvement"
    else:
        status = "ok"
    return Comparison(workload, status, old_best, new_best, rel, allowance)


def compare_trajectories(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    sigmas: float = DEFAULT_SIGMAS,
    single_sample_floor: float = SINGLE_SAMPLE_FLOOR,
) -> list[Comparison]:
    """Every workload's verdict across two trajectory documents.

    Workloads present on only one side report as 'removed'/'added' —
    informational, never gating.  Results come back sorted by workload
    label so reports are stable.

    Pure: computes verdicts from the two documents.
    """
    old_entries = old["workloads"]
    new_entries = new["workloads"]
    comparisons = []
    for label in sorted(set(old_entries) | set(new_entries)):
        if label not in new_entries:
            comparisons.append(Comparison(label, "removed"))
        elif label not in old_entries:
            comparisons.append(Comparison(label, "added"))
        else:
            comparisons.append(
                compare_entries(
                    label,
                    old_entries[label],
                    new_entries[label],
                    threshold,
                    sigmas,
                    single_sample_floor,
                )
            )
    return comparisons


def same_host(old: dict[str, Any], new: dict[str, Any]) -> bool:
    """True when both trajectories were recorded on matching hosts."""
    old_host = old.get("host", {})
    new_host = new.get("host", {})
    return bool(old_host) and all(
        old_host.get(key) == new_host.get(key)
        for key in ("cpu_count", "platform")
    )


def _format_comparison(comparison: Comparison) -> str:
    if comparison.rel_change is None:
        return f"{comparison.status:>11}  {comparison.workload}"
    return (
        f"{comparison.status:>11}  {comparison.workload}  "
        f"{comparison.old_best:.3f}s -> {comparison.new_best:.3f}s  "
        f"({comparison.rel_change:+.1%}, allowed ±{comparison.allowance:.1%})"
    )


# -- CLI -----------------------------------------------------------------------


def _cmd_record(args: argparse.Namespace) -> int:
    output = Path(args.output)
    bench_name = args.bench_name or output.stem
    workloads = QUICK_WORKLOADS if args.quick else WORKLOADS
    algorithms = QUICK_ALGORITHMS if args.quick else ALGORITHMS
    backends = (
        [token.strip() for token in args.backends.split(",") if token.strip()]
        if args.backends
        else None
    )
    document = record_trajectory(
        bench_name,
        workloads=workloads,
        algorithms=algorithms,
        repeats=args.repeats,
        jobs=args.jobs,
        memory=not args.no_memory,
        description=args.description,
        backends=backends,
    )
    if args.append_series:
        batch_sizes = (
            [int(token) for token in args.append_batches.split(",")]
            if args.append_batches
            else None
        )
        document["workloads"].update(
            record_append_series(
                workloads=QUICK_WORKLOADS if args.quick else None,
                batch_sizes=batch_sizes,
                repeats=args.repeats,
                jobs=args.jobs,
                backends=backends,
            )
        )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {output}")
    for label, entry in document["workloads"].items():
        if "skipped" in entry:
            print(f"{label:44s} skipped ({entry['skipped']})")
            continue
        print(
            f"{label:44s} median {entry['wall_seconds']:.3f}s  "
            f"best {entry['best_seconds']:.3f}s  "
            f"±{entry['stdev_seconds']:.3f}s  x{entry['repeats']}"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    old = load_trajectory(args.old)
    new = load_trajectory(args.new)
    comparisons = compare_trajectories(
        old,
        new,
        threshold=args.threshold,
        sigmas=args.sigmas,
        single_sample_floor=args.single_sample_floor,
    )
    hosts_match = same_host(old, new)
    print(f"comparing {old.get('bench')} -> {new.get('bench')}")
    if not hosts_match:
        print(
            "note: host fingerprints differ; "
            + ("--strict gates anyway" if args.strict else "report-only")
        )
    for comparison in comparisons:
        print(_format_comparison(comparison))
    regressions = [c for c in comparisons if c.status == "regression"]
    if regressions and (hosts_match or args.strict):
        print(f"FAIL: {len(regressions)} regression(s)")
        return 1
    print("ok: no gating regressions")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-bench`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Record and compare benchmark-trajectory snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="measure the workload matrix into a BENCH_N.json"
    )
    record.add_argument("--output", required=True, help="trajectory JSON path")
    record.add_argument(
        "--bench-name", default=None, help="defaults to the output stem"
    )
    record.add_argument("--description", default="")
    record.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    record.add_argument(
        "--jobs", default=None, help="pool spec for the cells (default serial)"
    )
    record.add_argument(
        "--backends",
        default=None,
        help=(
            "comma-separated backend cells, e.g. 'default,columnar'; "
            "'default' keeps the historical labels, named backends record "
            "as label@backend"
        ),
    )
    record.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized cut: one small workload, EulerFD only",
    )
    record.add_argument(
        "--append-series",
        action="store_true",
        help="also record delta-append latency vs full re-discovery cells",
    )
    record.add_argument(
        "--append-batches",
        default=None,
        help="comma-separated batch sizes for the append series",
    )
    record.add_argument(
        "--no-memory",
        action="store_true",
        help="skip the traced+tracemalloc attribution pass",
    )
    record.set_defaults(handler=_cmd_record)

    compare = sub.add_parser(
        "compare", help="gate NEW against OLD with noise-aware thresholds"
    )
    compare.add_argument("old")
    compare.add_argument("new")
    compare.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    compare.add_argument("--sigmas", type=float, default=DEFAULT_SIGMAS)
    compare.add_argument(
        "--single-sample-floor", type=float, default=SINGLE_SAMPLE_FLOOR
    )
    compare.add_argument(
        "--strict",
        action="store_true",
        help="gate on regressions even across differing hosts",
    )
    compare.set_defaults(handler=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-bench`` console script."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
