"""Shared infrastructure for the experiment harness.

Every table/figure module in this package reduces to the same loop: build
a workload relation, run a set of algorithms on it, time them, and score
the approximate ones against an exact ground truth.  This module hosts
that loop plus the ground-truth cache and the paper-style row formatting
(TL/ML markers for budget blow-ups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from ..algorithms import AidFd, EulerFD, Fdep, HyFD, Tane, TaneBudgetExceeded
from ..core.result import DiscoveryResult
from ..engine import (
    Backend,
    ExecutionContext,
    PoolSpec,
    WorkerPool,
    get_pool,
    run_cells_sharded,
    use_context,
)
from ..fd import FD
from ..metrics import fd_set_metrics, timed
from ..obs import Recorder, RunTelemetry, recording
from ..relation.relation import Relation

SKIPPED_MEMORY = "ML"
"""Marker mirroring Table III's 'memory limit exceeded' entries."""

SKIPPED_TIME = "TL"
"""Marker mirroring Table III's 'time limit exceeded' entries."""


@dataclass
class AlgorithmRun:
    """Outcome of one algorithm on one workload.

    ``telemetry`` is populated only when the run was traced
    (``run_algorithm(..., trace=True)``); it carries the per-phase
    breakdown, counters and convergence series recorded by ``repro.obs``
    so benchmark tables can report *where* the seconds went.

    ``backend`` names the execution-engine backend the run used, and
    ``partition_cache`` holds this run's slice of the shared partition
    store's traffic (hits/misses/derives/evictions deltas) — nonzero
    hits on the second algorithm of a matrix are the cache paying off.

    ``jobs`` is the worker count of the run's pool (1 for serial) and
    ``parallel_efficiency`` is the run's worker busy time divided by
    ``wall × jobs`` — 1.0 means every worker was saturated for the whole
    run, small values mean the serial coordinator dominated.  ``None``
    on serial runs and runs whose pool never dispatched a chunk.

    ``all_seconds`` preserves every repeat's wall time (``seconds`` is
    their median) so downstream consumers — the trajectory harness's
    noise model in particular — can compute min-of-k and spread.
    """

    algorithm: str
    seconds: float | None
    fds: frozenset[FD] | None
    all_seconds: tuple[float, ...] = ()
    skipped: str | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    telemetry: RunTelemetry | None = None
    backend: str | None = None
    partition_cache: dict[str, int] = field(default_factory=dict)
    jobs: int = 1
    parallel_efficiency: float | None = None

    @property
    def ok(self) -> bool:
        return self.skipped is None


def default_algorithms() -> dict[str, Callable[[], Any]]:
    """The five algorithms of Section V-A, in the paper's column order.

    Tane runs with a lattice-width budget standing in for the paper's
    32 GB memory limit; blowing it reports ``ML`` exactly as Table III
    does for the wide datasets.
    """
    return {
        "Tane": lambda: Tane(max_level_width=200_000),
        "Fdep": Fdep,
        "HyFD": HyFD,
        "AID-FD": AidFd,
        "EulerFD": EulerFD,
    }


def run_algorithm(
    factory: Callable[[], Any],
    relation: Relation,
    repeats: int = 1,
    trace: bool = False,
    context: ExecutionContext | None = None,
    backend: str | Backend | None = None,
    jobs: int | str | PoolSpec | WorkerPool | None = None,
) -> AlgorithmRun:
    """Run one algorithm, translating budget blow-ups into skip markers.

    With ``trace=True`` a fresh :class:`repro.obs.Recorder` is installed
    for the duration of the run and the resulting :class:`RunTelemetry`
    is attached to the returned row.  Tracing off is the default and
    leaves benchmark numbers untouched — no recorder, no events.

    ``context`` installs a caller-owned :class:`ExecutionContext` for the
    run — the way the table harnesses share one partition cache across a
    whole algorithm matrix; without one, a private context is built here
    (honoring ``backend`` and ``jobs``) so the row can still report
    backend name, cache traffic and parallel efficiency.
    """
    algorithm = factory()
    if not trace:
        return _execute(algorithm, relation, repeats, context, backend, jobs)
    # The recorder goes on first so that, when the context is private,
    # its preprocess span and cache counters land in the telemetry too.
    with recording(Recorder()):
        return _execute(algorithm, relation, repeats, context, backend, jobs)


def _execute(
    algorithm: Any,
    relation: Relation,
    repeats: int,
    context: ExecutionContext | None,
    backend: str | Backend | None,
    jobs: int | str | PoolSpec | WorkerPool | None = None,
) -> AlgorithmRun:
    if context is None:
        context = ExecutionContext(relation, backend=backend, jobs=jobs)
    pool = context.pool
    busy_before = pool.busy_seconds
    chunks_before = pool.chunks_dispatched
    try:
        before = context.partitions.stats()
        with use_context(context):
            run = timed(lambda: algorithm.discover(relation), repeats=repeats)
    except TaneBudgetExceeded:
        return AlgorithmRun(
            algorithm.name,
            None,
            None,
            skipped=SKIPPED_MEMORY,
            backend=context.backend.name,
            partition_cache=_cache_delta(before, context.partitions.stats()),
            jobs=pool.jobs,
        )
    except MemoryError:  # pragma: no cover - depends on host limits
        return AlgorithmRun(
            algorithm.name, None, None, skipped=SKIPPED_MEMORY, jobs=pool.jobs
        )
    result: DiscoveryResult = run.value
    return AlgorithmRun(
        algorithm=result.algorithm,
        seconds=run.seconds,
        fds=result.fds,
        all_seconds=run.all_seconds,
        stats=result.stats,
        telemetry=result.telemetry,
        backend=context.backend.name,
        partition_cache=_cache_delta(before, context.partitions.stats()),
        jobs=pool.jobs,
        parallel_efficiency=_efficiency(
            pool,
            busy_before,
            chunks_before,
            sum(run.all_seconds),
        ),
    )


def _efficiency(
    pool: WorkerPool,
    busy_before: float,
    chunks_before: int,
    wall_seconds: float,
) -> float | None:
    """Worker busy time over ``wall × jobs`` for one run's pool traffic.

    Pure: reads the pool's counters against the captured baselines.
    """
    if pool.is_serial or wall_seconds <= 0:
        return None
    if pool.chunks_dispatched == chunks_before:
        return None  # every batch fell below the dispatch thresholds
    return (pool.busy_seconds - busy_before) / (wall_seconds * pool.jobs)


def _cache_delta(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    """Partition-cache traffic attributable to one run of a shared store."""
    return {key: after[key] - before.get(key, 0) for key in after}


def _run_cell(payload: tuple[str, Relation, str | None]) -> AlgorithmRun:
    """Worker: one (algorithm × relation) matrix cell in a private context.

    The cell's own context is explicitly serial — matrix cells are the
    unit of fan-out here, and nesting a second pool inside a process
    worker would oversubscribe the host without helping determinism.
    """
    key, relation, backend = payload
    factory = default_algorithms()[key]
    context = ExecutionContext(relation, backend=backend, jobs="serial")
    return run_algorithm(factory, relation, context=context)


def run_matrix(
    relations: Sequence[Relation],
    algorithms: Sequence[str] | None = None,
    jobs: int | str | PoolSpec | WorkerPool | None = None,
    backend: str | None = None,
) -> dict[tuple[str, str], AlgorithmRun]:
    """Run every (algorithm × relation) cell, optionally across a pool.

    The coarse-grained counterpart to kernel sharding: cells are fully
    independent (each builds a private, serial execution context), so a
    parallel ``jobs`` spec fans whole cells out to the workers while the
    returned mapping — keyed ``(algorithm, relation.name)`` — is always
    assembled in cell-definition order, independent of completion order.

    ``algorithms`` selects keys of :func:`default_algorithms` (all five,
    in the paper's column order, when omitted).  ``backend`` must be a
    backend *name* here, never an instance: cells may cross a process
    boundary and ship only picklable payloads.
    """
    if algorithms is None:
        algorithms = list(default_algorithms())
    else:
        known = default_algorithms()
        for key in algorithms:
            if key not in known:
                raise KeyError(f"unknown algorithm {key!r}")
    cells = [
        (key, relation, backend)
        for relation in relations
        for key in algorithms
    ]
    pool = get_pool(jobs)
    runs = run_cells_sharded(pool, _run_cell, cells)
    return {
        (key, relation.name): run
        for (key, relation, _), run in zip(cells, runs)
    }


class GroundTruthCache:
    """Exact FD sets per workload, computed once and shared across rows.

    Fdep is the fastest exact algorithm on the scaled (row-limited)
    workloads the harness uses; HyFD takes over for tall relations where
    all-pairs comparison would dominate.
    """

    def __init__(self, tall_threshold: int = 3000) -> None:
        self.tall_threshold = tall_threshold
        self._cache: dict[str, frozenset[FD]] = {}

    def truth_for(self, relation: Relation) -> frozenset[FD]:
        key = f"{relation.name}:{relation.num_rows}x{relation.num_columns}"
        if key not in self._cache:
            if relation.num_rows > self.tall_threshold:
                oracle: Any = HyFD()
            else:
                oracle = Fdep()
            self._cache[key] = oracle.discover(relation).fds
        return self._cache[key]


def score(run: AlgorithmRun, truth: frozenset[FD]) -> float | None:
    """F1 of a completed run against the ground truth; None when skipped."""
    if run.fds is None:
        return None
    return fd_set_metrics(run.fds, truth).f1


def format_cell(value: float | str | None, precision: int = 3) -> str:
    """Uniform table-cell rendering: numbers, skip markers, blanks."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return f"{value:.{precision}f}"


def print_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[str]],
) -> None:
    """Plain-text table printer used by every bench target."""
    rows = [list(row) for row in rows]
    widths = [len(column) for column in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(name.ljust(width) for name, width in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
