"""Assemble the archived benchmark outputs into one report.

Every benchmark target writes its printed table to
``benchmarks/results/<test-name>.txt``; this module stitches those
archives into a single document (the measured half of EXPERIMENTS.md).

Run as ``python -m repro.bench.report [results_dir]``.
"""

from __future__ import annotations

import sys
from pathlib import Path

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

# Canonical ordering: the paper's artifact order, then the extras.
SECTION_ORDER = (
    ("test_table3_small_datasets", "Table III (small datasets)"),
    ("test_table3_large_datasets", "Table III (large datasets)"),
    ("test_table3_uniprot_full_width", "Table III (uniprot at full width)"),
    ("test_fig6_row_scalability", "Figure 6 (rows, fd-reduced-30)"),
    ("test_fig7_row_scalability", "Figure 7 (rows, lineitem)"),
    ("test_fig8_column_scalability", "Figure 8 (columns, plista)"),
    ("test_fig9_column_scalability", "Figure 9 (columns, uniprot)"),
    ("test_fig10_mlfq_parameters", "Figure 10 (MLFQ queues)"),
    ("test_fig11_th_ncover", "Figure 11 (Th_Ncover)"),
    ("test_fig11_th_pcover", "Figure 11 (Th_Pcover)"),
    ("test_table5_dms_fleet", "Table V (DMS fleet)"),
    ("test_ablation_design_choices", "Ablation (design choices)"),
)


def build_report(results_dir: Path | str = DEFAULT_RESULTS_DIR) -> str:
    """Concatenate the archived tables in canonical order."""
    results_dir = Path(results_dir)
    sections: list[str] = []
    seen: set[str] = set()
    for stem, title in SECTION_ORDER:
        path = results_dir / f"{stem}.txt"
        if path.exists():
            seen.add(path.name)
            sections.append(f"### {title}\n\n```\n{path.read_text().strip()}\n```\n")
    # Anything else (e.g. parametrized index benchmarks) goes at the end.
    for path in sorted(results_dir.glob("*.txt")):
        if path.name in seen:
            continue
        sections.append(
            f"### {path.stem}\n\n```\n{path.read_text().strip()}\n```\n"
        )
    if not sections:
        return (
            "No archived benchmark results found; run\n"
            "`pytest benchmarks/ --benchmark-only` first.\n"
        )
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    results_dir = Path(argv[0]) if argv else DEFAULT_RESULTS_DIR
    print(build_report(results_dir))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
