"""Experiments E-F6..E-F9: row and column scalability (Figures 6-9).

Row scalability sweeps the tuple count on fd-reduced-30 (Fig. 6) and
lineitem (Fig. 7); column scalability sweeps the attribute count on
plista (Fig. 8) and uniprot (Fig. 9).  Each sweep reports, per point, the
runtime of every algorithm and the number of FDs found — the two series
the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

from ..datasets import registry
from .runner import AlgorithmRun, default_algorithms, format_cell, print_table


@dataclass
class SweepPoint:
    """One x-axis point of a scalability figure."""

    x: int
    runs: dict[str, AlgorithmRun]
    fd_count: int | None

    def cells(self, algorithm_names: Sequence[str]) -> list[str]:
        line = [str(self.x)]
        for name in algorithm_names:
            run = self.runs[name]
            line.append(format_cell(run.skipped or run.seconds))
        line.append("-" if self.fd_count is None else str(self.fd_count))
        return line


def _sweep(
    make_relation: Callable[[int], Any],
    points: Sequence[int],
    algorithms: dict[str, Callable[[], Any]],
) -> list[SweepPoint]:
    from ..engine import ExecutionContext
    from .runner import run_algorithm

    series: list[SweepPoint] = []
    for x in points:
        relation = make_relation(x)
        # One execution context per sweep point: every algorithm at this
        # size shares the preprocessed matrix and partition cache.
        context = ExecutionContext(relation)
        runs = {
            name: run_algorithm(factory, relation, context=context)
            for name, factory in algorithms.items()
        }
        fd_count = None
        euler = runs.get("EulerFD")
        if euler is not None and euler.fds is not None:
            fd_count = len(euler.fds)
        series.append(SweepPoint(x=x, runs=runs, fd_count=fd_count))
    return series


def row_scalability(
    dataset: str,
    row_counts: Sequence[int],
    algorithm_names: Sequence[str] = ("Tane", "HyFD", "AID-FD", "EulerFD"),
    columns: int | None = None,
) -> list[SweepPoint]:
    """Figures 6/7: runtimes while the number of tuples grows.

    Fdep is excluded by default, as in the paper ("the results of Fdep is
    not presented because it runs into the time limit and memory limit").
    """
    algorithms = {
        name: factory
        for name, factory in default_algorithms().items()
        if name in algorithm_names
    }
    info = registry.info(dataset)
    return _sweep(
        lambda rows: info.make(rows=rows, columns=columns),
        row_counts,
        algorithms,
    )


def column_scalability(
    dataset: str,
    column_counts: Sequence[int],
    rows: int,
    algorithm_names: Sequence[str] = ("Fdep", "HyFD", "AID-FD", "EulerFD"),
) -> list[SweepPoint]:
    """Figures 8/9: runtimes while the number of attributes grows.

    Tane is excluded by default, as in the paper ("we do not present the
    experimental results of Tane because it runs into the memory limit").
    """
    algorithms = {
        name: factory
        for name, factory in default_algorithms().items()
        if name in algorithm_names
    }
    info = registry.info(dataset)
    return _sweep(
        lambda columns: info.make(rows=rows, columns=columns),
        column_counts,
        algorithms,
    )


def print_sweep(
    title: str,
    x_label: str,
    series: list[SweepPoint],
    algorithm_names: Sequence[str],
) -> None:
    header = [x_label, *[f"{name}[s]" for name in algorithm_names], "FDs"]
    print_table(title, header, [point.cells(algorithm_names) for point in series])
