"""Experiments E-F10 and E-F11: parameter studies (Figures 10 and 11).

Figure 10 varies the number of MLFQ queues (with the capa ranges of
Table IV) on adult, letter, plista and flight, reporting runtime and F1.
Figure 11 varies the two growth-rate thresholds over {0.1, 0.01, 0.001, 0}
on flight, fd-reduced-30, ncvoter and horse, comparing EulerFD against
AID-FD at every setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..algorithms import AidFd
from ..core.config import EulerFDConfig
from ..core.eulerfd import EulerFD
from ..datasets import registry
from ..metrics import fd_set_metrics, timed
from .runner import GroundTruthCache, format_cell, print_table

MLFQ_DATASETS = ("adult", "letter", "plista", "flight")
"""The four datasets of Figure 10."""

THRESHOLD_DATASETS = ("flight", "fd-reduced-30", "ncvoter", "horse")
"""The four datasets of Figure 11."""

PAPER_THRESHOLDS = (0.1, 0.01, 0.001, 0.0)
"""Threshold settings evaluated in Figure 11."""


@dataclass
class ParameterPoint:
    """One (dataset, parameter value) measurement."""

    dataset: str
    parameter: float
    algorithm: str
    seconds: float
    f1: float
    fd_count: int


def mlfq_sweep(
    queue_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    dataset_names: Sequence[str] = MLFQ_DATASETS,
    rows: int | None = None,
    truth_cache: GroundTruthCache | None = None,
) -> list[ParameterPoint]:
    """Figure 10: EulerFD runtime and F1 versus the number of MLFQ queues."""
    cache = truth_cache if truth_cache is not None else GroundTruthCache()
    points: list[ParameterPoint] = []
    for name in dataset_names:
        relation = registry.make(name, rows=rows)
        truth = cache.truth_for(relation)
        for queues in queue_counts:
            config = EulerFDConfig().with_queues(queues)
            run = timed(lambda: EulerFD(config).discover(relation))
            points.append(
                ParameterPoint(
                    dataset=name,
                    parameter=float(queues),
                    algorithm="EulerFD",
                    seconds=run.seconds,
                    f1=fd_set_metrics(run.value.fds, truth).f1,
                    fd_count=len(run.value.fds),
                )
            )
    return points


def threshold_sweep(
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    dataset_names: Sequence[str] = THRESHOLD_DATASETS,
    vary: str = "ncover",
    rows: int | None = None,
    truth_cache: GroundTruthCache | None = None,
) -> list[ParameterPoint]:
    """Figure 11: EulerFD and AID-FD versus the stopping thresholds.

    ``vary`` selects which threshold sweeps: ``"ncover"`` varies
    ``Th_Ncover`` with ``Th_Pcover`` pinned to 0.01 and vice versa for
    ``"pcover"`` — exactly the protocol of Section V-F.  AID-FD has only
    the one (negative cover) threshold; it appears in both sweeps as the
    paper plots it in both.
    """
    if vary not in {"ncover", "pcover"}:
        raise ValueError(f"vary must be 'ncover' or 'pcover', got {vary!r}")
    cache = truth_cache if truth_cache is not None else GroundTruthCache()
    points: list[ParameterPoint] = []
    for name in dataset_names:
        relation = registry.make(name, rows=rows)
        truth = cache.truth_for(relation)
        for threshold in thresholds:
            if vary == "ncover":
                config = EulerFDConfig().with_thresholds(th_ncover=threshold)
            else:
                config = EulerFDConfig().with_thresholds(th_pcover=threshold)
            euler_run = timed(lambda: EulerFD(config).discover(relation))
            points.append(
                ParameterPoint(
                    dataset=name,
                    parameter=threshold,
                    algorithm="EulerFD",
                    seconds=euler_run.seconds,
                    f1=fd_set_metrics(euler_run.value.fds, truth).f1,
                    fd_count=len(euler_run.value.fds),
                )
            )
            aid_run = timed(lambda: AidFd(threshold=threshold).discover(relation))
            points.append(
                ParameterPoint(
                    dataset=name,
                    parameter=threshold,
                    algorithm="AID-FD",
                    seconds=aid_run.seconds,
                    f1=fd_set_metrics(aid_run.value.fds, truth).f1,
                    fd_count=len(aid_run.value.fds),
                )
            )
    return points


def print_points(title: str, parameter_label: str, points: list[ParameterPoint]) -> None:
    header = [
        "Dataset", parameter_label, "Algorithm", "Time[s]", "F1", "FDs",
    ]
    rows = [
        [
            point.dataset,
            format_cell(point.parameter, precision=4),
            point.algorithm,
            format_cell(point.seconds),
            format_cell(point.f1),
            str(point.fd_count),
        ]
        for point in points
    ]
    print_table(title, header, rows)
