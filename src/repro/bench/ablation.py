"""Experiment E-ABL: ablations of EulerFD's design choices.

The paper attributes EulerFD's edge to (1) the MLFQ-guided sampling range,
(2) the double-cycle re-sampling structure, and (3) contribution-aware
scheduling generally; Section VI proposes dynamic capa ranges as future
work.  Each ablation disables or replaces exactly one of those pieces so
the contribution of each is measurable:

* ``single-queue``  — 1 MLFQ queue: scheduling degenerates to round-robin,
  isolating the value of capa-based prioritization;
* ``single-cycle``  — ``max_cycles=1``: one sampling phase, one inversion,
  no feedback from ``GR_Pcover`` (the AID-FD control structure on top of
  EulerFD's sampler);
* ``adaptive``      — the future-work dynamic re-division of capa ranges;
* ``full``          — the paper's recommended configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..core.config import EulerFDConfig
from ..core.eulerfd import EulerFD
from ..datasets import registry
from ..metrics import fd_set_metrics, timed
from .runner import GroundTruthCache, format_cell, print_table

ABLATION_DATASETS = ("adult", "plista")
"""Representative tall-and-narrow / short-and-wide workloads."""


def variants() -> dict[str, EulerFDConfig]:
    """The ablated configurations, keyed by variant name."""
    base = EulerFDConfig()
    return {
        "full": base,
        "single-queue": base.with_queues(1),
        "single-cycle": replace(base, max_cycles=1),
        "adaptive": replace(
            base, mlfq=replace(base.mlfq, adaptive=True)
        ),
    }


@dataclass
class AblationPoint:
    """One (dataset, variant) measurement."""

    dataset: str
    variant: str
    seconds: float
    f1: float
    fd_count: int
    pairs_compared: int
    cycles: int


def run_ablation(
    dataset_names: Sequence[str] = ABLATION_DATASETS,
    rows: int | None = None,
    truth_cache: GroundTruthCache | None = None,
) -> list[AblationPoint]:
    cache = truth_cache if truth_cache is not None else GroundTruthCache()
    points: list[AblationPoint] = []
    for name in dataset_names:
        relation = registry.make(name, rows=rows)
        truth = cache.truth_for(relation)
        for variant, config in variants().items():
            run = timed(lambda: EulerFD(config).discover(relation))
            result = run.value
            points.append(
                AblationPoint(
                    dataset=name,
                    variant=variant,
                    seconds=run.seconds,
                    f1=fd_set_metrics(result.fds, truth).f1,
                    fd_count=len(result.fds),
                    pairs_compared=result.stats["pairs_compared"],
                    cycles=result.stats["cycles"],
                )
            )
    return points


def print_ablation(points: list[AblationPoint]) -> None:
    header = ["Dataset", "Variant", "Time[s]", "F1", "FDs", "Pairs", "Cycles"]
    rows = [
        [
            point.dataset,
            point.variant,
            format_cell(point.seconds),
            format_cell(point.f1),
            str(point.fd_count),
            str(point.pairs_compared),
            str(point.cycles),
        ]
        for point in points
    ]
    print_table("Ablation — EulerFD design choices", header, rows)
