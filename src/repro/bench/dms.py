"""Experiment E-T5: the DMS fleet comparison of Table V.

The paper reports, per (rows x columns) bucket of Alibaba DMS's dataset
fleet, the size-weighted efficiency and accuracy ratios of EulerFD to
AID-FD:

    τe = Σ e_i(EulerFD)·√(R_i·C_i) / Σ e_i(AID-FD)·√(R_i·C_i)
    τa = Σ a_i(EulerFD)·√(R_i·C_i) / Σ a_i(AID-FD)·√(R_i·C_i)

with ``e_i`` the runtime, ``a_i`` the F1 score, ``R_i``/``C_i`` the shape
of dataset ``i``.  τe < 1 means EulerFD is faster, τa > 1 means it is
more accurate.  The fleet itself is simulated (see DESIGN.md §2); the
ratio computation is exactly the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..algorithms import AidFd
from ..core.eulerfd import EulerFD
from ..datasets.dms import COLUMN_BUCKETS, ROW_BUCKETS, fleet
from ..metrics import fd_set_metrics, timed
from .runner import GroundTruthCache, format_cell, print_table


@dataclass
class BucketAccumulator:
    """Weighted sums for one Table V cell."""

    euler_time: float = 0.0
    aid_time: float = 0.0
    euler_accuracy: float = 0.0
    aid_accuracy: float = 0.0
    scored: int = 0
    datasets: int = 0

    @property
    def tau_e(self) -> float | None:
        if self.aid_time == 0.0:
            return None
        return self.euler_time / self.aid_time

    @property
    def tau_a(self) -> float | None:
        # The paper leaves τa blank where exact benchmarks are unavailable;
        # here the analogue is a bucket with no scored datasets.
        if self.scored == 0 or self.aid_accuracy == 0.0:
            return None
        return self.euler_accuracy / self.aid_accuracy


@dataclass
class DmsReport:
    """The full Table V grid."""

    grid: dict[tuple[int, int], BucketAccumulator] = field(default_factory=dict)
    row_buckets: tuple[tuple[int, int], ...] = ROW_BUCKETS
    column_buckets: tuple[tuple[int, int], ...] = COLUMN_BUCKETS

    def cell(self, row_bucket: int, column_bucket: int) -> BucketAccumulator:
        return self.grid.setdefault(
            (row_bucket, column_bucket), BucketAccumulator()
        )


def run_dms(
    datasets_per_bucket: int = 3,
    seed: int = 2022_09_12,
    max_truth_columns: int = 60,
    row_buckets: tuple[tuple[int, int], ...] = ROW_BUCKETS,
    column_buckets: tuple[tuple[int, int], ...] = COLUMN_BUCKETS,
) -> DmsReport:
    """Run EulerFD and AID-FD over the simulated fleet and fill Table V.

    Ground truth (for τa) is computed exactly up to ``max_truth_columns``
    attributes; wider datasets contribute to τe only — mirroring the
    paper, where "accuracy evaluated based on benchmarks using exact
    discovery algorithms is not reported on large datasets".
    """
    report = DmsReport(row_buckets=row_buckets, column_buckets=column_buckets)
    cache = GroundTruthCache()
    for member in fleet(
        datasets_per_bucket=datasets_per_bucket,
        seed=seed,
        row_buckets=row_buckets,
        column_buckets=column_buckets,
    ):
        relation = member.relation
        weight = math.sqrt(relation.num_rows * relation.num_columns) or 1.0
        cell = report.cell(member.row_bucket, member.column_bucket)
        cell.datasets += 1
        euler_run = timed(lambda: EulerFD().discover(relation))
        aid_run = timed(lambda: AidFd().discover(relation))
        cell.euler_time += euler_run.seconds * weight
        cell.aid_time += aid_run.seconds * weight
        if relation.num_columns <= max_truth_columns:
            truth = cache.truth_for(relation)
            euler_f1 = fd_set_metrics(euler_run.value.fds, truth).f1
            aid_f1 = fd_set_metrics(aid_run.value.fds, truth).f1
            cell.euler_accuracy += euler_f1 * weight
            cell.aid_accuracy += aid_f1 * weight
            cell.scored += 1
    return report


def print_dms(report: DmsReport) -> None:
    header = ["rows \\ cols"] + [
        f"{low}~{high}" for low, high in report.column_buckets
    ]
    rows = []
    for row_bucket, (low, high) in enumerate(report.row_buckets):
        cells = [f"{low}~{high}"]
        for column_bucket in range(len(report.column_buckets)):
            cell = report.grid.get((row_bucket, column_bucket))
            if cell is None:
                cells.append("-")
                continue
            tau_e = format_cell(cell.tau_e)
            tau_a = format_cell(cell.tau_a)
            cells.append(f"{tau_e} / {tau_a}")
        rows.append(cells)
    print_table("Table V — DMS fleet (τe / τa, EulerFD vs AID-FD)", header, rows)
