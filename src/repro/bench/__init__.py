"""Experiment harness: one module per table/figure of Section V.

See DESIGN.md §3 for the experiment index mapping each module to its
paper artifact and `benchmarks/` target.
"""

from . import ablation, dms, overall, parameters, scalability, trajectory
from .runner import (
    AlgorithmRun,
    GroundTruthCache,
    default_algorithms,
    print_table,
    run_algorithm,
)

__all__ = [
    "AlgorithmRun",
    "GroundTruthCache",
    "ablation",
    "default_algorithms",
    "dms",
    "overall",
    "parameters",
    "print_table",
    "run_algorithm",
    "scalability",
    "trajectory",
]
