"""Experiment E-T3: the overall comparison of Table III.

For every registered benchmark dataset, run Tane, Fdep, HyFD, AID-FD and
EulerFD, report runtimes and FD counts, and score the two approximate
algorithms with F1 against the exact ground truth — the same columns the
paper's Table III reports.  Workloads run at the registry's scaled-down
bench sizes by default (see DESIGN.md §2); pass ``rows`` to override.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets import registry
from ..engine import ExecutionContext
from ..metrics import fd_set_metrics
from .runner import (
    AlgorithmRun,
    GroundTruthCache,
    default_algorithms,
    format_cell,
    print_table,
    run_algorithm,
)


@dataclass
class Table3Row:
    """One dataset's line of Table III."""

    dataset: str
    rows: int
    columns: int
    true_fds: int
    runs: dict[str, AlgorithmRun]
    f1: dict[str, float | None]

    def cells(self) -> list[str]:
        line = [self.dataset, str(self.rows), str(self.columns), str(self.true_fds)]
        for name, run in self.runs.items():
            line.append(format_cell(run.skipped or run.seconds))
        for name in ("AID-FD", "EulerFD"):
            run = self.runs[name]
            count = "-" if run.fds is None else str(len(run.fds))
            line.append(count)
            line.append(format_cell(self.f1.get(name)))
        return line


def run_table3(
    dataset_names: list[str] | None = None,
    rows: int | None = None,
    skip_tane_above_columns: int = 40,
    skip_fdep_above_rows: int = 10_000,
) -> list[Table3Row]:
    """Compute Table III rows on the scaled workloads.

    ``skip_tane_above_columns`` / ``skip_fdep_above_rows`` mirror the
    paper's ML/TL entries: lattice traversal drowns on wide schemas and
    all-pairs induction on tall ones, so those cells are marked skipped
    instead of burning hours to prove the same point.  Datasets under the
    width cut-off still run with Tane's lattice budget, which reports ML
    by itself when a level blows up (as the paper's Tane does on the
    wide web datasets).
    """
    names = dataset_names if dataset_names is not None else registry.dataset_names()
    truth_cache = GroundTruthCache()
    algorithms = default_algorithms()
    table: list[Table3Row] = []
    for name in names:
        relation = registry.make(name, rows=rows)
        truth = truth_cache.truth_for(relation)
        # One execution context per dataset: the preprocessed matrix and
        # the partition cache span the whole algorithm matrix, so e.g.
        # EulerFD's singleton partitions are hits after Tane ran.
        context = ExecutionContext(relation)
        runs: dict[str, AlgorithmRun] = {}
        f1: dict[str, float | None] = {}
        for algo_name, factory in algorithms.items():
            if algo_name == "Tane" and relation.num_columns > skip_tane_above_columns:
                runs[algo_name] = AlgorithmRun(algo_name, None, None, skipped="ML")
                continue
            if algo_name == "Fdep" and relation.num_rows > skip_fdep_above_rows:
                runs[algo_name] = AlgorithmRun(algo_name, None, None, skipped="TL")
                continue
            run = run_algorithm(factory, relation, context=context)
            runs[algo_name] = run
            if run.fds is not None:
                f1[algo_name] = fd_set_metrics(run.fds, truth).f1
        table.append(
            Table3Row(
                dataset=name,
                rows=relation.num_rows,
                columns=relation.num_columns,
                true_fds=len(truth),
                runs=runs,
                f1=f1,
            )
        )
    return table


def print_table3(table: list[Table3Row]) -> None:
    header = [
        "Dataset", "Rows", "Cols", "FDs",
        "Tane[s]", "Fdep[s]", "HyFD[s]", "AID-FD[s]", "EulerFD[s]",
        "AID FDs", "AID F1", "Euler FDs", "Euler F1",
    ]
    # Reorder cells: Table3Row.cells appends counts/F1 AID then Euler;
    # header above matches that order.
    rows = []
    for row in table:
        cells = row.cells()
        rows.append(cells)
    print_table("Table III — overall performance (scaled workloads)", header, rows)
