"""Accuracy metrics over FD sets (Section V-B).

The paper scores approximate algorithms by the F1 measure between the
discovered set of non-trivial minimal FDs and the ground truth produced by
an exact algorithm — plain set precision/recall, no logical-implication
credit.  :func:`fd_set_metrics` computes exactly that; the semantic
comparison (:func:`semantic_equivalence`) exists separately for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from ..fd import FD, inference


@dataclass(frozen=True)
class AccuracyReport:
    """Precision / recall / F1 of a discovered FD set against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        found = self.true_positives + self.false_positives
        return self.true_positives / found if found else 1.0

    @property
    def recall(self) -> float:
        truth = self.true_positives + self.false_negatives
        return self.true_positives / truth if truth else 1.0

    @property
    def f1(self) -> float:
        denominator = self.precision + self.recall
        if denominator == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / denominator

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f}"
        )


def fd_set_metrics(found: Iterable[FD], truth: Iterable[FD]) -> AccuracyReport:
    """Set-based precision/recall/F1 between two minimal FD collections."""
    found_set = set(found)
    truth_set = set(truth)
    true_positives = len(found_set & truth_set)
    return AccuracyReport(
        true_positives=true_positives,
        false_positives=len(found_set) - true_positives,
        false_negatives=len(truth_set) - true_positives,
    )


def f1_score(found: Iterable[FD], truth: Iterable[FD]) -> float:
    """Shorthand for ``fd_set_metrics(found, truth).f1``."""
    return fd_set_metrics(found, truth).f1


def semantic_equivalence(left: Iterable[FD], right: Iterable[FD]) -> bool:
    """Logical equivalence of two covers under Armstrong's axioms.

    Stricter than F1 = 1 on minimal covers in general (two different
    minimal covers can be equivalent), used by integration tests to check
    exact algorithms against each other.
    """
    return inference.equivalent(left, right)
