"""Runtime measurement helpers shared by the benchmark harness."""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class TimedRun:
    """Result of timing one callable: value plus wall-clock statistics.

    ``value`` is the return value of the *last* repeat — all repeats must
    be equivalent for the timing to mean anything, which holds for the
    deterministic discovery algorithms measured here.
    """

    value: Any
    seconds: float
    repeats: int
    all_seconds: tuple[float, ...]

    @property
    def best(self) -> float:
        return min(self.all_seconds)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.all_seconds)

    @property
    def stdev(self) -> float:
        """Sample standard deviation across repeats (0.0 for one repeat)."""
        if len(self.all_seconds) < 2:
            return 0.0
        return statistics.stdev(self.all_seconds)


def timed(function: Callable[[], T], repeats: int = 1) -> TimedRun:
    """Run ``function`` ``repeats`` times; report the median wall time.

    The cyclic garbage collector is disabled around each timed run — a
    collection landing inside one repeat would charge its pause to the
    algorithm and skew short measurements — and restored to its prior
    state afterwards (including on exceptions).

    The *last* return value is kept (all runs must be equivalent for the
    timing to mean anything; discovery algorithms here are deterministic).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    durations = []
    value: T | None = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            value = function()
            durations.append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return TimedRun(
        value=value,
        seconds=statistics.median(durations),
        repeats=repeats,
        all_seconds=tuple(durations),
    )
