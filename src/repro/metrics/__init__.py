"""Accuracy and timing metrics for FD-discovery experiments."""

from .accuracy import AccuracyReport, f1_score, fd_set_metrics, semantic_equivalence
from .error import ViolationProfile, g3_error, violation_profile
from .timing import TimedRun, timed

__all__ = [
    "AccuracyReport",
    "TimedRun",
    "ViolationProfile",
    "f1_score",
    "fd_set_metrics",
    "g3_error",
    "semantic_equivalence",
    "timed",
    "violation_profile",
]
