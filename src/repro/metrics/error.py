"""Violation-degree measures for individual FDs (g1 / g2 / g3).

The FD-discovery literature (Kivinen & Mannila [16]; Kruse & Naumann
[18]) quantifies *how badly* an FD is violated:

* **g1** — fraction of tuple *pairs* that violate the FD;
* **g2** — fraction of *tuples* involved in at least one violation;
* **g3** — minimum fraction of tuples to delete so the FD holds (the
  most common measure; 0 means the FD is exact).

Section II-C distinguishes these *approximate FDs* from the paper's
*approximate discovery* (exact FDs, approximately complete search); this
module bridges the two: when EulerFD overclaims an FD that sampling
never saw violated, its g3 is typically tiny — the claim is "almost
true".  The analysis example and several tests rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fd import FD
from ..relation.preprocess import PreprocessedRelation
from ..relation.validate import group_keys


@dataclass(frozen=True)
class ViolationProfile:
    """g1/g2/g3 of one FD over one relation."""

    fd: FD
    num_rows: int
    violating_pairs: int
    violating_tuples: int
    tuples_to_remove: int

    @property
    def total_pairs(self) -> int:
        return self.num_rows * (self.num_rows - 1) // 2

    @property
    def g1(self) -> float:
        return self.violating_pairs / self.total_pairs if self.total_pairs else 0.0

    @property
    def g2(self) -> float:
        return self.violating_tuples / self.num_rows if self.num_rows else 0.0

    @property
    def g3(self) -> float:
        return self.tuples_to_remove / self.num_rows if self.num_rows else 0.0

    @property
    def holds(self) -> bool:
        return self.violating_pairs == 0


def violation_profile(data: PreprocessedRelation, fd: FD) -> ViolationProfile:
    """Compute g1/g2/g3 of ``fd`` in one vectorized pass.

    Rows are grouped by their LHS labels; within each group the RHS value
    counts decide everything: a group of size ``s`` with value
    multiplicities ``m_1 >= m_2 >= ...`` contributes

    * ``(s^2 - Σ m_i^2) / 2``  violating pairs,
    * ``s`` violating tuples when it has >= 2 distinct values,
    * ``s - m_1`` deletions (keep the plurality value).
    """
    num_rows = data.num_rows
    if num_rows == 0:
        return ViolationProfile(fd, 0, 0, 0, 0)
    keys = group_keys(data, fd.lhs)
    rhs = data.matrix[:, fd.rhs].astype(np.int64)
    rhs_cardinality = int(rhs.max(initial=0)) + 1
    combined = keys * rhs_cardinality + rhs
    # Multiplicity of every (group, value) cell and of every group.
    _, cell_inverse, cell_counts = np.unique(
        combined, return_inverse=True, return_counts=True
    )
    _, group_inverse, group_counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    num_groups = group_counts.size
    # Σ m_i² and max m_i per group.
    cell_group = np.zeros(cell_counts.size, dtype=np.int64)
    cell_group[cell_inverse] = group_inverse
    sum_squares = np.zeros(num_groups, dtype=np.int64)
    np.add.at(sum_squares, cell_group, cell_counts**2)
    max_cell = np.zeros(num_groups, dtype=np.int64)
    np.maximum.at(max_cell, cell_group, cell_counts)

    violating_pairs = int(((group_counts**2 - sum_squares) // 2).sum())
    mixed = sum_squares != group_counts**2
    violating_tuples = int(group_counts[mixed].sum())
    tuples_to_remove = int((group_counts[mixed] - max_cell[mixed]).sum())
    return ViolationProfile(
        fd=fd,
        num_rows=num_rows,
        violating_pairs=violating_pairs,
        violating_tuples=violating_tuples,
        tuples_to_remove=tuples_to_remove,
    )


def g3_error(data: PreprocessedRelation, fd: FD) -> float:
    """Shorthand for ``violation_profile(data, fd).g3``."""
    return violation_profile(data, fd).g3
