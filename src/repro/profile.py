"""One-call relation profiling: columns, keys, and dependencies.

``profile_relation`` bundles the library's building blocks into the
report a data steward actually wants (and the shape of what DMS surfaces
to its users): per-column statistics, the minimal unique column
combinations (candidate keys), and the non-trivial minimal FDs — exact
when the relation is small enough, EulerFD-approximated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from .algorithms import Fdep
from .algorithms.ucc import UccResult, discover_uccs
from .core.eulerfd import EulerFD
from .core.result import DiscoveryResult
from .engine import acquire_context
from .relation.relation import Relation


@dataclass(frozen=True)
class ColumnProfile:
    """Statistics of one column."""

    name: str
    cardinality: int
    is_constant: bool
    is_unique: bool
    null_count: int


@dataclass(frozen=True)
class RelationProfile:
    """The full profiling report."""

    relation_name: str
    num_rows: int
    num_columns: int
    columns: tuple[ColumnProfile, ...]
    uccs: UccResult
    fds: DiscoveryResult
    exact: bool

    def render(self, max_fds: int = 20) -> str:
        lines = [
            f"Profile of {self.relation_name} "
            f"({self.num_rows} rows x {self.num_columns} columns)",
            "",
            "Columns:",
        ]
        for column in self.columns:
            flags = []
            if column.is_unique:
                flags.append("unique")
            if column.is_constant:
                flags.append("constant")
            if column.null_count:
                flags.append(f"{column.null_count} nulls")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"  {column.name}: {column.cardinality} distinct{suffix}"
            )
        lines.append("")
        lines.append(f"Candidate keys ({len(self.uccs)} minimal UCCs):")
        for text in self.uccs.format()[:10]:
            lines.append(f"  {text}")
        method = "exact" if self.exact else "approximate (EulerFD)"
        lines.append("")
        lines.append(f"Functional dependencies ({len(self.fds)}, {method}):")
        for text in self.fds.format_fds(limit=max_fds):
            lines.append(f"  {text}")
        if len(self.fds) > max_fds:
            lines.append(f"  ... and {len(self.fds) - max_fds} more")
        return "\n".join(lines)


def profile_relation(
    relation: Relation,
    exact_below_cells: int = 200_000,
    null_equals_null: bool = True,
) -> RelationProfile:
    """Profile ``relation``.

    FD discovery runs exactly (Fdep) when ``rows * columns`` stays under
    ``exact_below_cells``, otherwise approximately with EulerFD — the
    same latency-driven trade-off DMS makes in production.
    """
    data = acquire_context(relation, null_equals_null).data
    columns = []
    for index, name in enumerate(relation.column_names):
        cardinality = data.cardinality(index)
        nulls = sum(1 for value in relation.columns[index] if value is None)
        columns.append(
            ColumnProfile(
                name=name,
                cardinality=cardinality,
                is_constant=cardinality <= 1 and relation.num_rows > 0,
                is_unique=(
                    cardinality == relation.num_rows and relation.num_rows > 1
                ),
                null_count=nulls,
            )
        )
    exact = relation.num_rows * max(relation.num_columns, 1) <= exact_below_cells
    discoverer = Fdep(null_equals_null) if exact else EulerFD()
    fds = discoverer.discover(relation)
    uccs = discover_uccs(relation, null_equals_null)
    return RelationProfile(
        relation_name=relation.name,
        num_rows=relation.num_rows,
        num_columns=relation.num_columns,
        columns=tuple(columns),
        uccs=uccs,
        fds=fds,
        exact=exact,
    )
