"""Compare every discovery algorithm on one workload.

Generates the scaled `adult` benchmark dataset, runs the five algorithms
of the paper's evaluation (plus the brute-force oracle on a small slice),
and prints a Table III-style comparison: runtime, FD count, and F1
against the exact ground truth.

Run with:  python examples/compare_algorithms.py [dataset] [rows]
"""

from __future__ import annotations

import sys

from repro import available_algorithms, create, datasets
from repro.bench.runner import GroundTruthCache, format_cell, print_table
from repro.metrics import fd_set_metrics, timed


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "adult"
    rows = int(sys.argv[2]) if len(sys.argv) > 2 else 1000
    relation = datasets.make(dataset, rows=rows)
    print(f"Workload: {dataset} scaled to {relation.shape}")

    truth = GroundTruthCache().truth_for(relation)
    print(f"Ground truth (exact): {len(truth)} minimal FDs")

    table = []
    for key in ("tane", "fdep", "hyfd", "aidfd", "eulerfd"):
        run = timed(lambda: create(key).discover(relation))
        metrics = fd_set_metrics(run.value.fds, truth)
        table.append(
            [
                run.value.algorithm,
                format_cell(run.seconds),
                str(len(run.value.fds)),
                format_cell(metrics.precision),
                format_cell(metrics.recall),
                format_cell(metrics.f1),
            ]
        )
    print_table(
        f"{dataset} ({relation.num_rows}x{relation.num_columns})",
        ["Algorithm", "Time[s]", "FDs", "Precision", "Recall", "F1"],
        table,
    )
    print(f"\nAvailable algorithms: {', '.join(available_algorithms())}")


if __name__ == "__main__":
    main()
