"""Quickstart: discover functional dependencies with EulerFD.

Runs EulerFD on the paper's running example (the patient dataset of
Table I), prints every discovered non-trivial minimal FD with
human-readable attribute names, and shows the run statistics the
algorithm reports.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EulerFD, EulerFDConfig, datasets


def main() -> None:
    relation = datasets.patients()
    print(f"Input: {relation.name} ({relation.num_rows} rows, "
          f"{relation.num_columns} columns)")
    print(f"Columns: {', '.join(relation.column_names)}\n")

    # The paper's recommended configuration: Th_Ncover = Th_Pcover = 0.01
    # and the 6-queue MLFQ of Table IV.  Everything is overridable.
    config = EulerFDConfig()
    result = EulerFD(config).discover(relation)

    print(f"{result.summary()}\n")
    print("Discovered non-trivial minimal FDs:")
    for line in result.format_fds():
        print(f"  {line}")

    print("\nRun statistics:")
    for key in ("cycles", "sampling_rounds", "inversions", "pairs_compared",
                "ncover_size", "pcover_size"):
        print(f"  {key:16s} {result.stats[key]}")


if __name__ == "__main__":
    main()
