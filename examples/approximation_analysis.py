"""Analyze what approximate discovery gets wrong — and how wrong.

EulerFD trades completeness of the *negative* cover for speed: a
violation that sampling never observed lets an invalid FD slip into the
result.  This example quantifies that slack on a noisy workload:

1. profile the relation (columns, keys, FDs) with `profile_relation`;
2. diff EulerFD's claims against the exact cover (precision/recall/F1,
   exactly the paper's Section V-B metric);
3. for every overclaimed FD, compute its g3 error — the fraction of
   tuples one would have to delete to make it true.  The punchline of
   the analysis: overclaims are "almost-true" FDs with tiny g3.

Run with:  python examples/approximation_analysis.py
"""

from __future__ import annotations

from repro import EulerFD, datasets, profile_relation
from repro.algorithms import Fdep
from repro.metrics import fd_set_metrics, violation_profile
from repro.relation import preprocess


def main() -> None:
    # The weather generator plants a noisy dependency (weather_code is a
    # function of precipitation and cloud cover except for rare manual
    # corrections) — exactly the kind of rare violation sampling can miss.
    relation = datasets.make("weather", rows=1200)
    print(f"Workload: {relation.name} {relation.shape}\n")

    profile = profile_relation(relation)
    print(f"Column sketch: {len(profile.columns)} columns, "
          f"{sum(c.is_unique for c in profile.columns)} unique, "
          f"{sum(c.is_constant for c in profile.columns)} constant")
    print(f"Candidate keys: {len(profile.uccs)}\n")

    exact = Fdep().discover(relation)
    approx = EulerFD().discover(relation)
    report = fd_set_metrics(approx.fds, exact.fds)
    print(f"Exact cover:   {len(exact.fds)} FDs ({exact.runtime_seconds:.2f}s)")
    print(f"EulerFD cover: {len(approx.fds)} FDs ({approx.runtime_seconds:.2f}s)")
    print(f"Agreement:     {report}\n")

    overclaimed = sorted(approx.fds - exact.fds)
    missed = sorted(exact.fds - approx.fds)
    data = preprocess(relation)
    if overclaimed:
        print(f"Overclaimed FDs ({len(overclaimed)}) and their g3 error:")
        for fd in overclaimed[:10]:
            g3 = violation_profile(data, fd).g3
            print(f"  {fd.format(relation.column_names):60s} g3={g3:.4f}")
        worst = max(
            violation_profile(data, fd).g3 for fd in overclaimed
        )
        print(f"  worst g3 among overclaims: {worst:.4f} "
              f"(tiny: the claims are almost true)")
    else:
        print("No overclaimed FDs — EulerFD was exact on this run.")
    if missed:
        print(f"\nMissed minimal FDs ({len(missed)}), e.g.:")
        for fd in missed[:5]:
            print(f"  {fd.format(relation.column_names)}")


if __name__ == "__main__":
    main()
