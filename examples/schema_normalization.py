"""Schema normalization from discovered FDs (data-integration use case).

The paper motivates FDs for normalizing relations into Boyce-Codd Normal
Form: discovered FDs become keys and foreign keys, duplicate values are
eliminated, and the constraints become explicit [27].  This example:

1. generates a deliberately denormalized orders table (city determines
   country, customer determines city, ...),
2. discovers its FDs with EulerFD,
3. computes candidate keys from the FD closure,
4. decomposes the schema into BCNF fragments.

Run with:  python examples/schema_normalization.py
"""

from __future__ import annotations

import random

from repro import EulerFD
from repro.fd import attrset, inference
from repro.relation import Relation

CITIES = {
    "Hangzhou": "China", "Beijing": "China", "Atlanta": "USA",
    "Seattle": "USA", "Berlin": "Germany",
}


def build_orders(num_rows: int = 400, seed: int = 5) -> Relation:
    rng = random.Random(seed)
    customers = {
        f"cust{i}": rng.choice(list(CITIES)) for i in range(40)
    }
    rows = []
    for order_id in range(num_rows):
        customer = rng.choice(list(customers))
        city = customers[customer]
        rows.append(
            (
                f"o{order_id}",
                customer,
                city,
                CITIES[city],
                rng.choice(["card", "cash", "transfer"]),
                rng.randint(1, 9) * 10,
            )
        )
    return Relation.from_rows(
        rows,
        ["order_id", "customer", "city", "country", "payment", "amount"],
        name="orders",
    )


def main() -> None:
    relation = build_orders()
    print(f"Input: {relation.name} {relation.shape}")

    result = EulerFD().discover(relation)
    fds = list(result.fds)
    print(f"\nDiscovered {len(fds)} minimal FDs, e.g.:")
    for line in result.format_fds(limit=8):
        print(f"  {line}")

    keys = inference.candidate_keys(relation.num_columns, fds, limit=5)
    print("\nCandidate keys:")
    for key in keys:
        print(f"  {attrset.format_mask(key, relation.column_names)}")

    fragments = inference.bcnf_decompose(relation.num_columns, fds)
    print("\nBCNF decomposition:")
    for fragment in fragments:
        names = attrset.format_mask(fragment, relation.column_names)
        fragment_keys = inference.candidate_keys(
            relation.num_columns,
            [fd for fd in fds
             if attrset.is_subset(fd.lhs | attrset.singleton(fd.rhs), fragment)],
            limit=1,
        )
        print(f"  fragment {names}")

    # Sanity: the decomposition covers the schema.
    union = 0
    for fragment in fragments:
        union |= fragment
    assert union == attrset.universe(relation.num_columns)
    print("\nAll attributes covered; fragments are in BCNF.")


if __name__ == "__main__":
    main()
