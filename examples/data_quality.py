"""Data-quality triage with exact and approximate dependencies.

A classic cleaning workflow (the data-cleaning application of the
paper's introduction): dependencies that *almost* hold usually indicate
errors, not the absence of a rule.  This example

1. builds an orders table and corrupts a handful of cells,
2. discovers the exact FDs (the corrupted rule disappears),
3. re-discovers with an error budget (``ApproxFDs``, g3 <= 2%) — the
   rule resurfaces as an approximate dependency,
4. pinpoints the offending tuples with ``find_violation`` so a steward
   can repair them.

Run with:  python examples/data_quality.py
"""

from __future__ import annotations

import random

from repro.algorithms import Fdep
from repro.algorithms.approx import ApproxFDs
from repro.fd import FD
from repro.metrics import violation_profile
from repro.relation import Relation, find_violation, preprocess

CITIES = {"Hangzhou": "CN", "Atlanta": "US", "Berlin": "DE", "Lyon": "FR"}


def build_corrupted_orders(num_rows: int = 300, seed: int = 12) -> Relation:
    rng = random.Random(seed)
    rows = []
    for order in range(num_rows):
        city = rng.choice(list(CITIES))
        rows.append([f"o{order}", city, CITIES[city], rng.randint(1, 500)])
    for row_index in rng.sample(range(num_rows), 3):  # typos in country
        rows[row_index][2] = "XX"
    return Relation.from_rows(
        [tuple(row) for row in rows],
        ["order_id", "city", "country", "amount"],
        name="orders-dirty",
    )


def main() -> None:
    relation = build_corrupted_orders()
    city = relation.column_index("city")
    country = relation.column_index("country")
    rule = FD.of([city], country)

    exact = Fdep().discover(relation)
    print(f"Exact FDs: {len(exact.fds)}")
    print(f"  city -> country holds exactly: {rule in exact.fds}")

    tolerant = ApproxFDs(epsilon=0.02).discover(relation)
    print(f"\nApproximate FDs (g3 <= 2%): {len(tolerant.fds)}")
    print(f"  city -> country holds approximately: {rule in tolerant.fds}")

    data = preprocess(relation)
    profile = violation_profile(data, rule)
    print(
        f"\nViolation profile of city -> country: "
        f"{profile.violating_tuples} tuples involved, "
        f"g3 = {profile.g3:.4f} "
        f"(repair by fixing {profile.tuples_to_remove} tuples)"
    )

    witness = find_violation(data, rule)
    assert witness is not None
    row_a, row_b = witness
    print("\nExample conflicting pair for the steward:")
    for row_index in (row_a, row_b):
        print(f"  row {row_index}: {relation.row(row_index)}")


if __name__ == "__main__":
    main()
