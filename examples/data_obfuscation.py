"""The DMS data-obfuscation workflow (Section I of the paper).

Alibaba Cloud's Data Management Service uses FD discovery to protect
sensitive data in three steps:

1. domain experts label sensitive attributes (here: Age and Gender);
2. FD discovery finds the *underlying sensitive attributes* — unlabeled
   attributes that (transitively) determine a labeled one;
3. both groups are obfuscated (masked) before data leaves the service.

This example runs the full pipeline on the patient dataset: discover FDs
with EulerFD, chase determinants through the FD closure, and emit a
masked copy of the relation.

Run with:  python examples/data_obfuscation.py
"""

from __future__ import annotations

from repro import EulerFD, datasets
from repro.fd import inference
from repro.relation import Relation


def find_underlying_sensitive(
    relation: Relation, sensitive: list[str]
) -> tuple[set[str], list[str]]:
    """Step 2: attributes that determine a sensitive attribute via FDs."""
    result = EulerFD().discover(relation)
    fds = list(result.fds)
    underlying: set[str] = set()
    explanations: list[str] = []
    for attribute in sensitive:
        target = relation.column_index(attribute)
        determinants = inference.determinants_of(
            target, fds, relation.num_columns
        )
        for index in determinants:
            name = relation.column_names[index]
            if name not in sensitive:
                underlying.add(name)
                explanations.append(f"{name} helps determine {attribute}")
    return underlying, explanations


def mask_columns(relation: Relation, to_mask: set[str]) -> Relation:
    """Step 3: replace protected values with deterministic tokens."""
    masked_columns = []
    for name, column in zip(relation.column_names, relation.columns):
        if name in to_mask:
            tokens = {}
            masked = tuple(
                f"tok#{tokens.setdefault(value, len(tokens))}"
                for value in column
            )
            masked_columns.append(masked)
        else:
            masked_columns.append(column)
    return Relation(
        relation.column_names, tuple(masked_columns), f"{relation.name}-masked"
    )


def main() -> None:
    relation = datasets.patients()
    sensitive = ["Age", "Gender"]
    print(f"Labeled sensitive attributes: {sensitive}")

    underlying, explanations = find_underlying_sensitive(relation, sensitive)
    print(f"Underlying sensitive attributes found via FDs: {sorted(underlying)}")
    for line in explanations:
        print(f"  - {line}")

    protected = set(sensitive) | underlying
    masked = mask_columns(relation, protected)
    print(f"\nMasked relation ({', '.join(sorted(protected))} tokenized):")
    header = " | ".join(f"{name:14s}" for name in masked.column_names)
    print(f"  {header}")
    for row in masked.iter_rows():
        print("  " + " | ".join(f"{str(value):14s}" for value in row))


if __name__ == "__main__":
    main()
