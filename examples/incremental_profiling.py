"""Keep an FD profile fresh while a table grows (DMS-style).

Production tables mostly grow; re-profiling from scratch on every batch
wastes the work already done.  ``IncrementalEulerFD`` keeps the covers
alive across appends: insertions can only *invalidate* dependencies, so
the state specializes monotonically and each batch costs only the
comparisons that involve new tuples.

The example streams a day of orders at a time into the profiler and
watches dependencies fall as real-world mess accumulates.  The whole
session runs under the observability recorder (``repro.obs``), so at
the end the per-phase wall-time tree shows where the maintenance work
went — each day's ``append`` span with its nested ``inversion``.

Run with:  python examples/incremental_profiling.py
"""

from __future__ import annotations

import random

from repro import obs
from repro.core import IncrementalEulerFD
from repro.fd import FD
from repro.relation import Relation

CITIES = {"Hangzhou": "CN", "Atlanta": "US", "Berlin": "DE"}


def day_of_orders(day: int, rng: random.Random) -> list[tuple]:
    rows = []
    for order in range(40):
        city = rng.choice(list(CITIES))
        country = CITIES[city]
        if day == 3 and order == 7:
            country = "??"  # a bad import lands on day 3
        rows.append((f"d{day}-o{order}", city, country, rng.randint(1, 99)))
    return rows


def main() -> None:
    rng = random.Random(42)
    base = Relation.from_rows(
        day_of_orders(0, rng),
        ["order_id", "city", "country", "amount"],
        name="orders-stream",
    )
    with obs.recording() as recorder:
        session = IncrementalEulerFD(base, exhaustive_base=True)
        rule = FD.of([base.column_index("city")], base.column_index("country"))

        result = session.current_result()
        print(f"day 0: {result.num_rows} rows, {len(result.fds)} FDs, "
              f"city->country holds: {rule in result.fds}")

        for day in range(1, 6):
            result = session.append(day_of_orders(day, rng))
            print(f"day {day}: {result.num_rows} rows, {len(result.fds)} FDs, "
                  f"city->country holds: {rule in result.fds} "
                  f"({result.stats['pairs_compared']} pairs compared so far)")

    print("\nThe bad import on day 3 permanently invalidates the rule —")
    print("insertions only ever specialize the dependency cover.")

    print("\nWhere the maintenance time went:")
    print(obs.summary_tree(recorder))


if __name__ == "__main__":
    main()
