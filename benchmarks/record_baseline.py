"""Deprecated shim: the perf baseline now lives in ``repro-bench record``.

This script recorded the PR-5 parallel-engine snapshot
(``results/BENCH_5.json``) in an ad-hoc layout.  The benchmark
trajectory since moved to the stable ``repro-bench/1`` schema of
:mod:`repro.bench.trajectory` — recorded with ``repro-bench record``,
gated with ``repro-bench compare`` — and the legacy BENCH_5 file stays
readable through the loader's built-in adapter.

Invoking this script still works: it warns, maps the historical
``--jobs`` / ``--output`` flags onto the new recorder, and delegates.

Usage (preferred)::

    PYTHONPATH=src python -m repro.bench.trajectory record \
        --output benchmarks/results/BENCH_9.json

Usage (legacy, delegates to the above)::

    PYTHONPATH=src python benchmarks/record_baseline.py \
        [--jobs process:4] [--output benchmarks/results/BENCH_5.json]
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

from repro.bench import trajectory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default=None)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).parent / "results" / "BENCH_5.json"),
    )
    parser.add_argument(
        "--quick", action="store_true", help="forwarded to repro-bench record"
    )
    args = parser.parse_args(argv)
    warnings.warn(
        "benchmarks/record_baseline.py is deprecated; "
        "use `repro-bench record` (repro.bench.trajectory) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    forwarded = ["record", "--output", args.output]
    if args.jobs is not None:
        forwarded += ["--jobs", args.jobs]
    if args.quick:
        forwarded.append("--quick")
    return trajectory.main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
