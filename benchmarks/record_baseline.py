"""Record the parallel-engine perf baseline: ``results/BENCH_5.json``.

Measures, on this host:

* full-algorithm wall-clock (EulerFD / HyFD / Fdep) on three synthetic
  generator workloads, serial vs a 4-worker process pool, with each
  run's partition-cache traffic and parallel efficiency;
* the two sharded kernels in isolation (pair agree-masks and batched
  validation), serial vs the pool;
* the seen-dict micro-optimization (single-lookup admit vs the doubled
  ``dict.get`` it replaced) on a replayed admission stream.

The committed JSON records whatever the recording host produced —
including ``host.cpu_count``, which is the number to read first: on a
single-core container the process pool *cannot* win and the file shows
the dispatch overhead honestly; CI regenerates the file on multi-core
runners and uploads it as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/record_baseline.py \
        [--jobs process:4] [--output benchmarks/results/BENCH_5.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any

from repro.algorithms import create
from repro.bench.runner import run_algorithm
from repro.datasets import registry
from repro.engine import ExecutionContext, close_all_pools, get_pool
from repro.engine.parallel import agree_masks_sharded
from repro.fd import attrset
from repro.metrics import timed
from repro.relation.preprocess import preprocess

#: (dataset, rows, seed) — bench-scale cuts of the synthetic generators.
WORKLOADS = [
    ("fd-reduced-30", 2000, 5),
    ("plista", 300, 5),
    ("uniprot", 200, 5),
]

ALGORITHMS = ["eulerfd", "hyfd", "fdep"]


def _measure_run(algorithm: str, relation: Any, jobs: str | None) -> dict[str, Any]:
    run = run_algorithm(
        create(algorithm).__class__, relation, jobs=jobs
    )
    return {
        "seconds": run.seconds,
        "fd_count": len(run.fds) if run.fds is not None else None,
        "jobs": run.jobs,
        "parallel_efficiency": run.parallel_efficiency,
        "partition_cache": run.partition_cache,
        "pairs_compared": run.stats.get("pairs_compared"),
    }


def _algorithm_matrix(jobs: str) -> dict[str, Any]:
    matrix: dict[str, Any] = {}
    for name, rows, seed in WORKLOADS:
        relation = registry.make(name, rows=rows, seed=seed)
        label = f"{name}[{rows}x{relation.num_columns}]"
        matrix[label] = {}
        for algorithm in ALGORITHMS:
            serial = _measure_run(algorithm, relation, None)
            fanned = _measure_run(algorithm, relation, jobs)
            matrix[label][algorithm] = {
                "serial": serial,
                jobs: fanned,
                "speedup": (
                    serial["seconds"] / fanned["seconds"]
                    if fanned["seconds"]
                    else None
                ),
            }
    return matrix


def _kernel_micro(jobs: str) -> dict[str, Any]:
    relation = registry.make("fd-reduced-30", rows=2000, seed=5)
    data = preprocess(relation, True)
    rows_a = [pair % (data.num_rows - 1) for pair in range(120_000)]
    rows_b = [pair + 1 for pair in rows_a]
    serial_pool, fan_pool = get_pool(None), get_pool(jobs)
    serial = timed(
        lambda: agree_masks_sharded(serial_pool, data, rows_a, rows_b), repeats=3
    )
    fanned = timed(
        lambda: agree_masks_sharded(fan_pool, data, rows_a, rows_b), repeats=3
    )
    candidates = list(create("fdep").discover(relation).fds)
    serial_ctx = ExecutionContext(relation)
    fan_ctx = ExecutionContext(relation, jobs=jobs)
    validate_serial = timed(
        lambda: serial_ctx.validate_many(candidates, witnesses=True), repeats=3
    )
    validate_fanned = timed(
        lambda: fan_ctx.validate_many(candidates, witnesses=True), repeats=3
    )
    return {
        "agree_masks": {
            "pairs": len(rows_a),
            "serial_seconds": serial.seconds,
            f"{jobs}_seconds": fanned.seconds,
            "speedup": serial.seconds / fanned.seconds,
        },
        "validate_many": {
            "candidates": len(candidates),
            "serial_seconds": validate_serial.seconds,
            f"{jobs}_seconds": validate_fanned.seconds,
            "speedup": validate_serial.seconds / validate_fanned.seconds,
        },
    }


def _seen_dict_micro() -> dict[str, Any]:
    """Replay an admission stream through both seen-dict access patterns.

    The sampler/incremental admit path used to probe the seen-dict twice
    per mask (``seen.get`` to test, then ``seen.get`` again to store);
    the shipped code reads once and reuses the value.  Replaying the
    same recorded stream through both shapes isolates the dictionary
    cost from everything else the admit path does.
    """
    relation = registry.make("fd-reduced-30", rows=2000, seed=5)
    data = preprocess(relation, True)
    universe = attrset.universe(data.num_columns)
    rows_a = [pair % (data.num_rows - 1) for pair in range(60_000)]
    rows_b = [pair + 1 for pair in rows_a]
    stream = data.agree_masks_bulk(rows_a, rows_b)

    def double_lookup() -> int:
        seen: dict[int, int] = {}
        admitted = 0
        for agree in stream:
            novel = (universe & ~agree) & ~seen.get(agree, 0)
            if novel:
                seen[agree] = seen.get(agree, 0) | novel
                admitted += 1
        return admitted

    def single_lookup() -> int:
        seen: dict[int, int] = {}
        admitted = 0
        for agree in stream:
            prior = seen.get(agree, 0)
            novel = (universe & ~agree) & ~prior
            if novel:
                seen[agree] = prior | novel
                admitted += 1
        return admitted

    assert double_lookup() == single_lookup()
    doubled = timed(double_lookup, repeats=5)
    single = timed(single_lookup, repeats=5)
    return {
        "masks_replayed": len(stream),
        "double_lookup_seconds": doubled.seconds,
        "single_lookup_seconds": single.seconds,
        "speedup": doubled.seconds / single.seconds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default="process:4")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).parent / "results" / "BENCH_5.json"),
    )
    args = parser.parse_args(argv)

    try:
        baseline = {
            "bench": "BENCH_5",
            "description": (
                "parallel-engine baseline: algorithm wall-clock, kernel "
                "micro-benchmarks and the seen-dict micro-optimization, "
                "serial vs a worker pool"
            ),
            "host": {
                "cpu_count": os.cpu_count(),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "jobs": args.jobs,
            "algorithms": _algorithm_matrix(args.jobs),
            "kernels": _kernel_micro(args.jobs),
            "seen_dict_micro": _seen_dict_micro(),
        }
    finally:
        # A crashed workload must still unlink published segments; only
        # the atexit hook would otherwise stand between us and orphans.
        close_all_pools()
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    print(json.dumps(baseline["host"], indent=2))
    for workload, per_algorithm in baseline["algorithms"].items():
        for algorithm, cells in per_algorithm.items():
            print(
                f"{workload:32s} {algorithm:8s} "
                f"serial {cells['serial']['seconds']:.3f}s  "
                f"{args.jobs} {cells[args.jobs]['seconds']:.3f}s  "
                f"speedup {cells['speedup']:.2f}x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
