"""E-ABL — ablations of EulerFD's design choices (DESIGN.md §3).

Disables one design element at a time — MLFQ prioritization, the double
cycle, static capa ranges — to quantify each piece's contribution on a
tall-narrow (adult) and short-wide (plista) workload.
"""

from __future__ import annotations

import pytest

from repro.bench import ablation


@pytest.fixture(scope="module")
def points():
    return ablation.run_ablation()


def test_ablation_design_choices(benchmark, points, emit):
    emit(ablation.print_ablation, points)
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("adult")
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    by_key = {(p.dataset, p.variant): p for p in points}
    for dataset in ablation.ABLATION_DATASETS:
        full = by_key[(dataset, "full")]
        single_cycle = by_key[(dataset, "single-cycle")]
        # The double cycle only ever adds sampling work, so the full
        # configuration compares at least as many tuple pairs and can
        # only gain accuracy.
        assert full.pairs_compared >= single_cycle.pairs_compared
        assert full.f1 >= single_cycle.f1 - 0.02
        assert full.cycles >= single_cycle.cycles
