"""E-F6 — Figure 6: row scalability on fd-reduced-30.

The paper sweeps 50k..250k rows; the scaled sweep keeps the 30-column
schema and grows rows geometrically, reporting the same series: runtime
per algorithm and the number of FDs.  The headline shape: EulerFD scales
almost linearly with rows and beats AID-FD throughout.
"""

from __future__ import annotations

import pytest

from repro.bench import scalability

ALGORITHMS = ("Tane", "HyFD", "AID-FD", "EulerFD")
ROW_COUNTS = (500, 1000, 2000, 4000)


@pytest.fixture(scope="module")
def series():
    return scalability.row_scalability(
        "fd-reduced-30", ROW_COUNTS, algorithm_names=ALGORITHMS, columns=30
    )


def test_fig6_row_scalability(benchmark, series, emit):
    emit(
        scalability.print_sweep,
        "Figure 6 — row scalability on fd-reduced-30",
        "rows",
        series,
        ALGORITHMS,
    )
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("fd-reduced-30", rows=ROW_COUNTS[-1], columns=30)
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    for point in series:
        assert point.runs["EulerFD"].ok
        assert point.runs["AID-FD"].ok
    # EulerFD's runtime grows sub-quadratically across the sweep.
    first, last = series[0], series[-1]
    ratio = last.runs["EulerFD"].seconds / max(first.runs["EulerFD"].seconds, 1e-9)
    rows_ratio = last.x / first.x
    assert ratio < rows_ratio**2
    # At the largest point EulerFD is at least competitive with AID-FD.
    assert (
        last.runs["EulerFD"].seconds
        <= last.runs["AID-FD"].seconds * 1.5
    )
