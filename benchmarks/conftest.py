"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md §3).  Results are printed to the *real* stdout — bypassing
pytest's capture so ``pytest benchmarks/ --benchmark-only | tee ...``
records the tables — and archived under ``benchmarks/results/``.
"""

from __future__ import annotations

import contextlib
import io
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, request, capfd):
    """Render a harness print function to real stdout + a results file.

    pytest's default fd-level capture swallows even direct writes to the
    underlying descriptor, so the write happens inside
    ``capfd.disabled()`` — the tables then reach the terminal (and any
    ``tee``) live.
    """

    def _emit(printer, *args, **kwargs) -> str:
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            printer(*args, **kwargs)
        text = buffer.getvalue()
        with capfd.disabled():
            sys.stdout.write(text)
            sys.stdout.flush()
        target = results_dir / f"{request.node.name}.txt"
        target.write_text(text)
        return text

    return _emit
