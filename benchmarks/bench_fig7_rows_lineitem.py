"""E-F7 — Figure 7: row scalability on lineitem.

The paper sweeps 8k..4M rows of TPC-H lineitem; the scaled sweep grows
the lookalike relation geometrically.  Expected shape: EulerFD scales
nearly linearly and opens the largest margin over AID-FD on this
dataset (the paper reports >6x at full scale).
"""

from __future__ import annotations

import pytest

from repro.bench import scalability

ALGORITHMS = ("Tane", "HyFD", "AID-FD", "EulerFD")
ROW_COUNTS = (500, 1000, 2000, 4000, 8000)


@pytest.fixture(scope="module")
def series():
    return scalability.row_scalability(
        "lineitem", ROW_COUNTS, algorithm_names=ALGORITHMS
    )


def test_fig7_row_scalability(benchmark, series, emit):
    emit(
        scalability.print_sweep,
        "Figure 7 — row scalability on lineitem",
        "rows",
        series,
        ALGORITHMS,
    )
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("lineitem", rows=ROW_COUNTS[-1])
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    for point in series:
        assert point.runs["EulerFD"].ok
    first, last = series[0], series[-1]
    ratio = last.runs["EulerFD"].seconds / max(first.runs["EulerFD"].seconds, 1e-9)
    rows_ratio = last.x / first.x
    assert ratio < rows_ratio**2
