"""E-F8 — Figure 8: column scalability on plista.

The paper grows plista from 10 to 60 columns at 1001 rows; the scaled
sweep grows the lookalike schema at 400 rows.  As in the paper, Tane is
absent (memory limit) and the FD-induction algorithms dominate, with
EulerFD fastest throughout.
"""

from __future__ import annotations

import pytest

from repro.bench import scalability

ALGORITHMS = ("Fdep", "HyFD", "AID-FD", "EulerFD")
COLUMN_COUNTS = (8, 12, 16, 20)
ROWS = 400


@pytest.fixture(scope="module")
def series():
    return scalability.column_scalability(
        "plista", COLUMN_COUNTS, rows=ROWS, algorithm_names=ALGORITHMS
    )


def test_fig8_column_scalability(benchmark, series, emit):
    emit(
        scalability.print_sweep,
        "Figure 8 — column scalability on plista",
        "columns",
        series,
        ALGORITHMS,
    )
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("plista", rows=ROWS, columns=COLUMN_COUNTS[-1])
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    for point in series:
        assert point.runs["EulerFD"].ok
        assert point.runs["Fdep"].ok
    # EulerFD is at least competitive with the approximate baseline at
    # the widest point.
    last = series[-1]
    assert (
        last.runs["EulerFD"].seconds <= last.runs["AID-FD"].seconds * 1.5
    )
