"""E-ABL (index structures) — the extended binary tree vs the FD-tree.

Section IV-D motivates the extended binary tree over the classic FD-tree
("consumes less memory while quickly searching for specializations and
generalizations").  This benchmark replays an identical inversion
workload — the negative cover EulerFD collects on the plista workload —
against all three LhsIndex implementations and times them; covers must
come out identical.
"""

from __future__ import annotations

import pytest

from repro.core.inversion import Inverter
from repro.datasets import registry
from repro.fd import (
    FD,
    BinaryLhsTree,
    BitsetLhsIndex,
    FDTreeIndex,
    NegativeCover,
    covers,
)

FACTORIES = {
    "binary-tree": BinaryLhsTree,
    "fd-tree": FDTreeIndex,
    "bitset": BitsetLhsIndex,
}


@pytest.fixture(scope="module")
def workload():
    """The exact non-FD stream of one EulerFD run on plista."""
    from repro.core import EulerFDConfig
    from repro.core.sampler import SamplingModule
    from repro.relation import preprocess

    relation = registry.make("plista", rows=400, columns=20)
    data = preprocess(relation)
    sampler = SamplingModule(data, EulerFDConfig())
    non_fds: list[FD] = []
    for attribute in range(data.num_columns):
        if data.cardinality(attribute) > 1:
            non_fds.append(FD(0, attribute))
    while sampler.has_more():
        violations, stats = sampler.run_pass()
        if stats.pairs_compared == 0:
            break
        for agree, novel in violations:
            remaining = novel
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                non_fds.append(FD(agree, bit.bit_length() - 1))
    return data.num_columns, non_fds


def invert_with(factory, num_columns, non_fds):
    original = covers.default_index_factory
    covers.default_index_factory = factory
    try:
        ncover = NegativeCover(num_columns)
        inverter = Inverter(num_columns)
        admitted = [fd for fd in non_fds if ncover.add(fd)]
        inverter.process(admitted)
        return frozenset(inverter.pcover)
    finally:
        covers.default_index_factory = original


@pytest.mark.parametrize("index_name", list(FACTORIES))
def test_inversion_with_index(benchmark, workload, index_name):
    num_columns, non_fds = workload
    result = benchmark.pedantic(
        lambda: invert_with(FACTORIES[index_name], num_columns, non_fds),
        rounds=1,
        iterations=1,
    )
    reference = invert_with(BinaryLhsTree, num_columns, non_fds)
    assert result == reference  # all indexes must agree exactly
