"""E-T3 — Table III: overall performance on the 19 benchmark datasets.

Regenerates the paper's headline table at the registry's scaled-down
workload sizes: runtimes for Tane / Fdep / HyFD / AID-FD / EulerFD plus
FD counts and F1 scores for the two approximate algorithms.  ML/TL cells
mirror the paper's budget blow-ups (Tane on wide schemas, Fdep on tall
relations, everything but EulerFD on uniprot).
"""

from __future__ import annotations

import pytest

from repro.bench import overall
from repro.datasets import registry

# Datasets where every baseline is feasible at bench scale; uniprot joins
# the table with its paper-faithful ML/TL markers via the skip rules.
SMALL = [
    "iris", "balance-scale", "chess", "abalone", "nursery",
    "breast-cancer", "bridges", "echocardiogram", "adult",
]
LARGE = [
    "lineitem", "letter", "weather", "ncvoter", "hepatitis",
    "horse", "fd-reduced-30", "plista", "flight", "uniprot",
]


@pytest.fixture(scope="module")
def table3_small():
    return overall.run_table3(dataset_names=SMALL)


@pytest.fixture(scope="module")
def table3_large():
    return overall.run_table3(dataset_names=LARGE)


def test_table3_small_datasets(benchmark, table3_small, emit):
    emit(overall.print_table3, table3_small)
    relation = registry.make("adult")
    from repro.core import EulerFD

    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    scores = []
    for row in table3_small:
        euler = row.runs["EulerFD"]
        assert euler.ok, row.dataset
        assert row.f1["EulerFD"] is not None
        scores.append(row.f1["EulerFD"])
        # Datasets with a handful of true FDs make F1 hypersensitive to a
        # single overclaim; require solid accuracy per dataset and high
        # accuracy on average (Table III shows >= 0.975 everywhere).
        assert row.f1["EulerFD"] >= 0.6, (row.dataset, row.f1)
    assert sum(scores) / len(scores) >= 0.9


def test_table3_large_datasets(benchmark, table3_large, emit):
    emit(overall.print_table3, table3_large)
    relation = registry.make("lineitem")
    from repro.core import EulerFD

    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    # EulerFD processes every dataset — the paper's distinguishing claim.
    for row in table3_large:
        assert row.runs["EulerFD"].ok, row.dataset
    # EulerFD beats AID-FD on accuracy (or ties) dataset by dataset.
    for row in table3_large:
        euler_f1 = row.f1.get("EulerFD")
        aid_f1 = row.f1.get("AID-FD")
        if euler_f1 is not None and aid_f1 is not None:
            assert euler_f1 >= aid_f1 - 0.05, (row.dataset, euler_f1, aid_f1)


def test_table3_uniprot_full_width(benchmark, emit):
    """The uniprot row of Table III at the paper's full 223-column width:
    lattice traversal blows its memory budget within seconds — 'exact
    discovery algorithms cannot deal with datasets with more than 223
    columns' (Section V-G) — while EulerFD processes the dataset at the
    scaled bench width.

    (The synthetic full-width stand-in carries vastly more minimal FDs
    than real uniprot, whose 223 columns are highly correlated, so the
    EulerFD leg runs at the registry's bench width; see EXPERIMENTS.md.)
    """
    from repro.algorithms import Tane
    from repro.bench.runner import print_table, run_algorithm
    from repro.core import EulerFD

    full_width = registry.make("uniprot", rows=120, columns=223)
    tane = run_algorithm(lambda: Tane(max_level_width=200_000), full_width)
    assert not tane.ok and tane.skipped == "ML"
    bench_width = registry.make("uniprot")
    euler = benchmark.pedantic(
        lambda: EulerFD().discover(bench_width), rounds=1, iterations=1
    )
    assert len(euler.fds) > 0
    emit(
        print_table,
        "Table III — the uniprot story (full width vs bench width)",
        ["Algorithm", "Width", "Outcome"],
        [
            ["Tane", "223 columns", tane.skipped or f"{tane.seconds:.2f}s"],
            [
                "EulerFD",
                f"{bench_width.num_columns} columns",
                f"{euler.runtime_seconds:.2f}s, {len(euler.fds)} FDs",
            ],
        ],
    )
