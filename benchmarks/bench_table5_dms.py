"""E-T5 — Table V: the DMS fleet comparison.

Runs EulerFD and AID-FD over the simulated dataset fleet (seeded stand-in
for the 500 578 production datasets of Section V-G) and reports the same
size-weighted ratios the paper tabulates: τe (runtime, < 1 means EulerFD
faster) and τa (F1, > 1 means EulerFD more accurate) per rows x columns
bucket.
"""

from __future__ import annotations

import pytest

from repro.bench import dms


@pytest.fixture(scope="module")
def report():
    return dms.run_dms(datasets_per_bucket=2)


def test_table5_dms_fleet(benchmark, report, emit):
    emit(dms.print_dms, report)
    from repro.core import EulerFD
    from repro.datasets.dms import fleet

    member = next(iter(fleet(datasets_per_bucket=1)))
    benchmark.pedantic(
        lambda: EulerFD().discover(member.relation), rounds=1, iterations=1
    )
    assert report.grid, "the fleet must cover at least one bucket"
    taus_e = [c.tau_e for c in report.grid.values() if c.tau_e is not None]
    taus_a = [c.tau_a for c in report.grid.values() if c.tau_a is not None]
    assert taus_e, "every bucket has runtimes"
    assert taus_a, "small buckets have exact ground truth"
    # Aggregate shape of Table V: EulerFD is overall at least as accurate
    # as AID-FD (τa >= ~1 on average) and not dramatically slower.
    mean_tau_a = sum(taus_a) / len(taus_a)
    assert mean_tau_a >= 0.98
    mean_tau_e = sum(taus_e) / len(taus_e)
    assert mean_tau_e <= 2.5
