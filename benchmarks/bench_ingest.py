"""Continuous-ingest simulator: delta appends vs full re-discovery.

Simulates a table under steady insert load (the DMS setting of the
paper's Section V-G): a base prefix is profiled once, then batches of
new rows stream into :class:`~repro.core.IncrementalEulerFD`, whose
delta execution engine (DESIGN.md §12) extends the preprocessed matrix,
columnar encoding and partition store in place.  After every append the
simulator reports the append latency next to the cost of re-discovering
the grown prefix from scratch, and at the end estimates the crossover —
the batch size past which re-running stops being slower.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py \
        [--dataset fd-reduced-30] [--rows 2000] [--base-rows 1500] \
        [--batch-size 64] [--batches 6] [--backend columnar] \
        [--jobs process:4] [--quick] [--check-equivalence] [--json out.json]

``--check-equivalence`` runs the stream with an exhaustive base profile
and asserts, after every batch, that the delta-maintained FD set is
identical to exhaustive from-scratch discovery on the grown prefix —
the smoke the CI ``incremental`` job gates on.  The backend honours
``REPRO_BACKEND`` when ``--backend`` is omitted.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.algorithms import EulerFD
from repro.bench.runner import run_algorithm
from repro.core import IncrementalEulerFD
from repro.datasets import make
from repro.engine import close_all_pools
from repro.obs import monotonic
from repro.relation import Relation


def rediscover_seconds(relation, backend, jobs) -> float:
    """Wall time of one full EulerFD run over ``relation``."""
    run = run_algorithm(EulerFD, relation, backend=backend, jobs=jobs)
    return run.seconds if run.seconds is not None else float("inf")


def exhaustive_fds(relation, backend):
    """The exact FD set: every tuple pair, via the incremental engine."""
    session = IncrementalEulerFD(
        relation, exhaustive_base=True, backend=backend
    )
    return session.current_result().fds


def simulate(args: argparse.Namespace) -> dict:
    relation = make(args.dataset, rows=args.rows, seed=args.seed)
    rows = list(relation.iter_rows())
    base_rows = args.base_rows
    if base_rows is None:
        base_rows = max(1, len(rows) - args.batch_size * args.batches)
    base = Relation.from_rows(rows[:base_rows], relation.column_names)

    session = IncrementalEulerFD(
        base,
        exhaustive_base=args.check_equivalence,
        jobs=args.jobs,
        backend=args.backend,
    )
    shown_backend = args.backend or os.environ.get("REPRO_BACKEND", "default")
    print(
        f"ingest: {args.dataset} base={base_rows} rows, "
        f"batch={args.batch_size}, backend={shown_backend}"
    )

    steps = []
    cursor = base_rows
    for step in range(args.batches):
        batch = rows[cursor : cursor + args.batch_size]
        if not batch:
            break
        cursor += len(batch)
        start = monotonic()
        result = session.append(batch)
        append_seconds = monotonic() - start

        grown = Relation.from_rows(rows[:cursor], relation.column_names)
        full_seconds = rediscover_seconds(grown, args.backend, args.jobs)
        speedup = full_seconds / append_seconds if append_seconds else None
        store = session.context.partitions.stats()
        record = {
            "step": step + 1,
            "rows": cursor,
            "batch_rows": len(batch),
            "append_seconds": append_seconds,
            "full_seconds": full_seconds,
            "speedup": speedup,
            "fd_count": len(result.fds),
            "pairs_compared": result.stats["pairs_compared"],
            "delta_applied": store.get("delta_applied", 0),
            "delta_rebuilt": store.get("delta_rebuilt", 0),
        }
        if args.check_equivalence:
            oracle = exhaustive_fds(grown, args.backend)
            record["equivalent"] = result.fds == oracle
            if not record["equivalent"]:
                print(
                    f"step {step + 1}: MISMATCH — delta cover diverged "
                    f"from from-scratch discovery at {cursor} rows",
                    file=sys.stderr,
                )
        steps.append(record)
        line = (
            f"step {record['step']:>3}  rows={record['rows']:<6} "
            f"append {append_seconds * 1000:8.1f} ms   "
            f"full {full_seconds * 1000:8.1f} ms   "
            f"speedup {speedup:6.1f}x"
        )
        if args.check_equivalence:
            line += "   exact" if record["equivalent"] else "   DIVERGED"
        print(line)

    crossover = estimate_crossover(steps)
    if crossover is not None:
        print(
            f"crossover: appends stay ahead of re-discovery up to "
            f"~{crossover} rows per batch"
        )
    document = {
        "dataset": args.dataset,
        "rows": args.rows,
        "base_rows": base_rows,
        "batch_size": args.batch_size,
        "backend": shown_backend,
        "jobs": args.jobs,
        "check_equivalence": args.check_equivalence,
        "steps": steps,
        "crossover_batch_rows": crossover,
    }
    return document


def estimate_crossover(steps: list[dict]) -> int | None:
    """Extrapolated batch size where append latency meets re-discovery.

    Append cost is near-linear in the batch (O(batch x cluster) pairs),
    so the measured per-row append latency of the last step projects the
    batch size whose absorption would cost as much as one full run.
    """
    if not steps:
        return None
    last = steps[-1]
    if not last["append_seconds"] or not last["batch_rows"]:
        return None
    per_row = last["append_seconds"] / last["batch_rows"]
    return int(last["full_seconds"] / per_row)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="fd-reduced-30")
    parser.add_argument("--rows", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--base-rows",
        type=int,
        default=None,
        help="base prefix size (default: rows - batch-size * batches)",
    )
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument(
        "--backend", default=None, help="default: $REPRO_BACKEND or numpy"
    )
    parser.add_argument("--jobs", default=None)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: 400 rows, 3 batches of 16",
    )
    parser.add_argument(
        "--check-equivalence",
        action="store_true",
        help="exhaustive base + per-step exact-oracle comparison",
    )
    parser.add_argument(
        "--json", default=None, help="also write the step records as JSON"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 400)
        args.batch_size = 16
        args.batches = 3
    try:
        document = simulate(args)
    finally:
        close_all_pools()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {args.json}")
    if args.check_equivalence and not all(
        step.get("equivalent", True) for step in document["steps"]
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
