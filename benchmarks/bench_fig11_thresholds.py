"""E-F11 — Figure 11: growth-rate threshold evaluation.

Sweeps Th_Ncover and Th_Pcover over {0.1, 0.01, 0.001, 0} on the paper's
four representative datasets — flight (many attributes), fd-reduced-30
(many tuples), horse (many FDs), ncvoter (moderate) — comparing EulerFD
and AID-FD at every setting.  Expected shape (Section V-F): smaller
thresholds cost runtime and buy accuracy, with 0.01 the elbow.
"""

from __future__ import annotations

import pytest

from repro.bench import parameters
from repro.bench.runner import GroundTruthCache

# Scaled-down rows for the heavy datasets so 2 sweeps x 4 thresholds x
# 2 algorithms finish in minutes; shapes are unaffected.
SWEEP_ROWS = {"flight": 400, "fd-reduced-30": 1000, "ncvoter": 500, "horse": 80}


def run_sweep(vary: str):
    cache = GroundTruthCache()
    points = []
    for dataset in parameters.THRESHOLD_DATASETS:
        points.extend(
            parameters.threshold_sweep(
                thresholds=parameters.PAPER_THRESHOLDS,
                dataset_names=(dataset,),
                vary=vary,
                rows=SWEEP_ROWS[dataset],
                truth_cache=cache,
            )
        )
    return points


@pytest.fixture(scope="module")
def ncover_points():
    return run_sweep("ncover")


@pytest.fixture(scope="module")
def pcover_points():
    return run_sweep("pcover")


def test_fig11_th_ncover(benchmark, ncover_points, emit):
    emit(
        parameters.print_points,
        "Figure 11 — Th_Ncover sweep (Th_Pcover = 0.01)",
        "Th_Ncover",
        ncover_points,
    )
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("ncvoter", rows=SWEEP_ROWS["ncvoter"])
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    euler = [p for p in ncover_points if p.algorithm == "EulerFD"]
    for dataset in parameters.THRESHOLD_DATASETS:
        series = sorted(
            (p for p in euler if p.dataset == dataset),
            key=lambda p: p.parameter,
        )
        # Accuracy at the tightest threshold >= accuracy at the loosest.
        assert series[0].f1 >= series[-1].f1 - 0.02, dataset


def test_fig11_th_pcover(benchmark, pcover_points, emit):
    emit(
        parameters.print_points,
        "Figure 11 — Th_Pcover sweep (Th_Ncover = 0.01)",
        "Th_Pcover",
        pcover_points,
    )
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("flight", rows=SWEEP_ROWS["flight"])
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    assert {p.algorithm for p in pcover_points} == {"EulerFD", "AID-FD"}
