"""E-F10 — Figure 10: MLFQ parameter evaluation.

Sweeps the number of feedback queues from 1 to 7 (capa ranges of
Table IV) on adult, letter, plista and flight, reporting EulerFD's
runtime and F1 at every setting.  Expected shape (Section V-E): accuracy
grows with the queue count while runtime bottoms out around 6 queues.
"""

from __future__ import annotations

import pytest

from repro.bench import parameters

QUEUE_COUNTS = (1, 2, 3, 4, 5, 6, 7)


@pytest.fixture(scope="module")
def points():
    return parameters.mlfq_sweep(queue_counts=QUEUE_COUNTS)


def test_fig10_mlfq_parameters(benchmark, points, emit):
    emit(
        parameters.print_points,
        "Figure 10 — MLFQ parameter evaluation",
        "queues",
        points,
    )
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("adult")
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    by_dataset: dict[str, list] = {}
    for point in points:
        by_dataset.setdefault(point.dataset, []).append(point)
    assert set(by_dataset) == set(parameters.MLFQ_DATASETS)
    for dataset, series in by_dataset.items():
        series.sort(key=lambda p: p.parameter)
        # The multi-queue configurations must not lose accuracy against
        # the single queue (the paper: F1 increases with queue count).
        single_queue_f1 = series[0].f1
        best_multi_f1 = max(p.f1 for p in series[1:])
        assert best_multi_f1 >= single_queue_f1 - 0.02, dataset
