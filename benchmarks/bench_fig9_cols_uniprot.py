"""E-F9 — Figure 9: column scalability on uniprot.

The paper grows uniprot from 10 to 60 columns at 1000 rows (the full
223-column relation is only processed by EulerFD in Table III).  The
scaled sweep grows the lookalike schema at 400 rows.
"""

from __future__ import annotations

import pytest

from repro.bench import scalability

ALGORITHMS = ("Fdep", "HyFD", "AID-FD", "EulerFD")
COLUMN_COUNTS = (8, 12, 16, 20, 24)
ROWS = 400


@pytest.fixture(scope="module")
def series():
    return scalability.column_scalability(
        "uniprot", COLUMN_COUNTS, rows=ROWS, algorithm_names=ALGORITHMS
    )


def test_fig9_column_scalability(benchmark, series, emit):
    emit(
        scalability.print_sweep,
        "Figure 9 — column scalability on uniprot",
        "columns",
        series,
        ALGORITHMS,
    )
    from repro.core import EulerFD
    from repro.datasets import registry

    relation = registry.make("uniprot", rows=ROWS, columns=COLUMN_COUNTS[-1])
    benchmark.pedantic(
        lambda: EulerFD().discover(relation), rounds=1, iterations=1
    )
    for point in series:
        assert point.runs["EulerFD"].ok
    # Runtime grows with the number of FDs, which grows with columns.
    assert series[-1].fd_count is not None
    assert series[-1].fd_count >= series[0].fd_count
